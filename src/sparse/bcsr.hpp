// BCSR — block compressed sparse row with dense r x c blocks.
//
// The representative of the paper's "second type" of general formats
// ("represent the matrix as a collection of dense sub-matrices ...
// suitable for vectorization ... however, useless zeros are filled in"):
// the matrix is covered by aligned r x c tiles, every touched tile stored
// densely. Vector-friendly and index-light, but the fill-in costs real
// bandwidth — exactly the trade-off CSCV's IOBLR removes by aligning the
// blocks with the operator's geometry instead of the index grid.
#pragma once

#include <span>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"
#include "util/aligned_vector.hpp"

namespace cscv::sparse {

template <typename T>
class BcsrMatrix {
 public:
  BcsrMatrix() = default;

  /// Builds with `block_rows` x `block_cols` tiles aligned to the index
  /// grid. Both must be in {1, 2, 4, 8}.
  static BcsrMatrix from_csr(const CsrMatrix<T>& a, int block_rows = 4, int block_cols = 4);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return nnz_; }
  [[nodiscard]] int block_rows() const { return block_rows_; }
  [[nodiscard]] int block_cols() const { return block_cols_; }
  [[nodiscard]] offset_t num_blocks() const { return static_cast<offset_t>(block_col_.size()); }
  /// Stored values including fill-in zeros.
  [[nodiscard]] offset_t stored() const { return static_cast<offset_t>(values_.size()); }
  /// Fill-in ratio: stored / nnz - 1 (the BCSR analogue of R_nnzE).
  [[nodiscard]] double fill_ratio() const {
    return nnz_ == 0 ? 0.0
                     : static_cast<double>(stored()) / static_cast<double>(nnz_) - 1.0;
  }

  /// y = A x, OpenMP block-row parallel.
  void spmv(std::span<const T> x, std::span<T> y) const;

  [[nodiscard]] std::size_t matrix_bytes() const;

 private:
  template <int R, int C>
  void spmv_kernel(std::span<const T> x, std::span<T> y) const;

  index_t rows_ = 0;
  index_t cols_ = 0;
  offset_t nnz_ = 0;
  int block_rows_ = 0;
  int block_cols_ = 0;
  index_t num_block_rows_ = 0;
  util::AlignedVector<offset_t> block_row_ptr_;  // num_block_rows + 1
  util::AlignedVector<index_t> block_col_;       // block-column index per block
  util::AlignedVector<T> values_;                // dense R*C per block, row-major
};

extern template class BcsrMatrix<float>;
extern template class BcsrMatrix<double>;

}  // namespace cscv::sparse
