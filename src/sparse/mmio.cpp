#include "sparse/mmio.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "util/assertx.hpp"

namespace cscv::sparse {

namespace {

struct MmHeader {
  bool pattern = false;
  bool symmetric = false;
};

MmHeader parse_header(const std::string& line) {
  std::istringstream ss(line);
  std::string banner, object, format, field, symmetry;
  ss >> banner >> object >> format >> field >> symmetry;
  CSCV_CHECK_MSG(banner == "%%MatrixMarket", "not a Matrix Market file");
  CSCV_CHECK_MSG(object == "matrix", "unsupported MM object: " << object);
  CSCV_CHECK_MSG(format == "coordinate", "only coordinate format is supported");
  MmHeader h;
  if (field == "pattern") {
    h.pattern = true;
  } else {
    CSCV_CHECK_MSG(field == "real" || field == "integer" || field == "double",
                   "unsupported MM field: " << field);
  }
  if (symmetry == "symmetric") {
    h.symmetric = true;
  } else {
    CSCV_CHECK_MSG(symmetry == "general", "unsupported MM symmetry: " << symmetry);
  }
  return h;
}

}  // namespace

template <typename T>
CooMatrix<T> read_matrix_market(std::istream& in) {
  std::string line;
  CSCV_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty stream");
  const MmHeader header = parse_header(line);

  // Skip comments, then read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  CSCV_CHECK_MSG(rows > 0 && cols > 0 && entries >= 0, "bad MM size line: " << line);

  CooMatrix<T> coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.reserve(header.symmetric ? 2 * entries : entries);
  for (long k = 0; k < entries; ++k) {
    long r = 0, c = 0;
    double v = 1.0;
    in >> r >> c;
    if (!header.pattern) in >> v;
    CSCV_CHECK_MSG(static_cast<bool>(in), "truncated MM entry " << k);
    CSCV_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                   "MM index out of range at entry " << k);
    coo.add(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), static_cast<T>(v));
    if (header.symmetric && r != c) {
      coo.add(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), static_cast<T>(v));
    }
  }
  coo.normalize();
  return coo;
}

template <typename T>
CooMatrix<T> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  CSCV_CHECK_MSG(in.is_open(), "cannot open " << path);
  return read_matrix_market<T>(in);
}

template <typename T>
void write_matrix_market(std::ostream& out, const CooMatrix<T>& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  auto rows = m.row_indices();
  auto cols = m.col_indices();
  auto vals = m.values();
  for (std::size_t k = 0; k < vals.size(); ++k) {
    out << rows[k] + 1 << ' ' << cols[k] + 1 << ' ' << vals[k] << '\n';
  }
}

template <typename T>
void write_matrix_market_file(const std::string& path, const CooMatrix<T>& m) {
  std::ofstream out(path);
  CSCV_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  write_matrix_market(out, m);
}

template CooMatrix<float> read_matrix_market<float>(std::istream&);
template CooMatrix<double> read_matrix_market<double>(std::istream&);
template CooMatrix<float> read_matrix_market_file<float>(const std::string&);
template CooMatrix<double> read_matrix_market_file<double>(const std::string&);
template void write_matrix_market<float>(std::ostream&, const CooMatrix<float>&);
template void write_matrix_market<double>(std::ostream&, const CooMatrix<double>&);
template void write_matrix_market_file<float>(const std::string&, const CooMatrix<float>&);
template void write_matrix_market_file<double>(const std::string&, const CooMatrix<double>&);

}  // namespace cscv::sparse
