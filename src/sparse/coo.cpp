#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

#include "util/assertx.hpp"

namespace cscv::sparse {

template <typename T>
CooMatrix<T>::CooMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  CSCV_CHECK(rows >= 0 && cols >= 0);
}

template <typename T>
void CooMatrix<T>::add(index_t row, index_t col, T value) {
  CSCV_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  row_.push_back(row);
  col_.push_back(col);
  values_.push_back(value);
  normalized_ = false;
}

template <typename T>
void CooMatrix<T>::reserve(offset_t nnz) {
  row_.reserve(static_cast<std::size_t>(nnz));
  col_.reserve(static_cast<std::size_t>(nnz));
  values_.reserve(static_cast<std::size_t>(nnz));
}

template <typename T>
void CooMatrix<T>::normalize() {
  const std::size_t n = values_.size();
  // Sort an index permutation instead of a struct-of-arrays shuffle-in-place;
  // nnz fits in memory several times over at the scales we build.
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (row_[a] != row_[b]) return row_[a] < row_[b];
    return col_[a] < col_[b];
  });

  util::AlignedVector<index_t> new_row;
  util::AlignedVector<index_t> new_col;
  util::AlignedVector<T> new_val;
  new_row.reserve(n);
  new_col.reserve(n);
  new_val.reserve(n);

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = perm[k];
    if (!new_val.empty() && new_row.back() == row_[i] && new_col.back() == col_[i]) {
      new_val.back() += values_[i];
    } else {
      new_row.push_back(row_[i]);
      new_col.push_back(col_[i]);
      new_val.push_back(values_[i]);
    }
  }

  // Drop entries that cancelled to exactly zero during merging.
  std::size_t w = 0;
  for (std::size_t r = 0; r < new_val.size(); ++r) {
    if (new_val[r] != T(0)) {
      new_row[w] = new_row[r];
      new_col[w] = new_col[r];
      new_val[w] = new_val[r];
      ++w;
    }
  }
  new_row.resize(w);
  new_col.resize(w);
  new_val.resize(w);

  row_ = std::move(new_row);
  col_ = std::move(new_col);
  values_ = std::move(new_val);
  normalized_ = true;
}

template <typename T>
void CooMatrix<T>::spmv(std::span<const T> x, std::span<T> y) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  std::fill(y.begin(), y.end(), T(0));
  for (std::size_t k = 0; k < values_.size(); ++k) {
    y[static_cast<std::size_t>(row_[k])] += values_[k] * x[static_cast<std::size_t>(col_[k])];
  }
}

template <typename T>
void CooMatrix<T>::spmv_transpose(std::span<const T> y, std::span<T> x) const {
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  std::fill(x.begin(), x.end(), T(0));
  for (std::size_t k = 0; k < values_.size(); ++k) {
    x[static_cast<std::size_t>(col_[k])] += values_[k] * y[static_cast<std::size_t>(row_[k])];
  }
}

template class CooMatrix<float>;
template class CooMatrix<double>;

}  // namespace cscv::sparse
