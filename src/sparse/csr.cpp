#include "sparse/csr.hpp"

#include <algorithm>

#include "util/assertx.hpp"
#include "util/parallel.hpp"

namespace cscv::sparse {

namespace {

// One compiled per-row body serves every CSR kernel variant: the single-RHS
// kernels call with stride 1 / column 0, the multi-RHS kernels with stride
// num_rhs / column c. Open-coding the loop at each call site — even with
// identical source shape — lets the compiler make a different FP-contraction
// choice per site (fused FMA chain in one, unfused mul+add in another),
// which diverges in the last ulp and breaks the batched solvers' contract
// that column c of a fused apply is bitwise identical to the single-RHS
// apply. noinline pins both paths to this one instantiation.
template <typename T>
[[gnu::noinline]] T row_dot(const T* v, const index_t* ci, offset_t k0, offset_t k1,
                            const T* x, std::size_t stride, std::size_t c) {
  T acc = T(0);
  for (offset_t k = k0; k < k1; ++k) {
    acc += v[k] * x[static_cast<std::size_t>(ci[k]) * stride + c];
  }
  return acc;
}

template <typename T>
[[gnu::noinline]] void row_scatter(const T* v, const index_t* ci, offset_t k0, offset_t k1,
                                   T yr, T* x, std::size_t stride, std::size_t c) {
  for (offset_t k = k0; k < k1; ++k) {
    x[static_cast<std::size_t>(ci[k]) * stride + c] += v[k] * yr;
  }
}

}  // namespace

template <typename T>
CsrMatrix<T> CsrMatrix<T>::from_coo(const CooMatrix<T>& coo) {
  CSCV_CHECK_MSG(coo.normalized(), "CSR build requires a normalized COO");
  const auto rows = coo.rows();
  const auto nnz = coo.nnz();
  util::AlignedVector<offset_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (index_t r : coo.row_indices()) row_ptr[static_cast<std::size_t>(r) + 1]++;
  for (index_t r = 0; r < rows; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] += row_ptr[static_cast<std::size_t>(r)];
  }
  util::AlignedVector<index_t> col_idx(coo.col_indices().begin(), coo.col_indices().end());
  util::AlignedVector<T> values(coo.values().begin(), coo.values().end());
  CSCV_CHECK(row_ptr.back() == nnz);
  return CsrMatrix(rows, coo.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

template <typename T>
CsrMatrix<T>::CsrMatrix(index_t rows, index_t cols, util::AlignedVector<offset_t> row_ptr,
                        util::AlignedVector<index_t> col_idx, util::AlignedVector<T> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  CSCV_CHECK(rows_ >= 0 && cols_ >= 0);
  CSCV_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1);
  CSCV_CHECK(col_idx_.size() == values_.size());
  CSCV_CHECK(row_ptr_.front() == 0);
  CSCV_CHECK(row_ptr_.back() == static_cast<offset_t>(values_.size()));
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows_); ++r) {
    CSCV_CHECK_MSG(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr must be nondecreasing");
  }
}

template <typename T>
void CsrMatrix<T>::spmv_serial(std::span<const T> x, std::span<T> y) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  const offset_t* rp = row_ptr_.data();
  const index_t* ci = col_idx_.data();
  const T* v = values_.data();
  for (index_t r = 0; r < rows_; ++r) {
    y[static_cast<std::size_t>(r)] =
        row_dot(v, ci, rp[r], rp[r + 1], x.data(), std::size_t{1}, std::size_t{0});
  }
}

template <typename T>
void CsrMatrix<T>::spmv(std::span<const T> x, std::span<T> y) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  const offset_t* rp = row_ptr_.data();
  const index_t* ci = col_idx_.data();
  const T* v = values_.data();
  T* yp = y.data();
  const T* xp = x.data();
  util::parallel_for(0, static_cast<std::size_t>(rows_), [&](std::size_t r) {
    yp[r] = row_dot(v, ci, rp[r], rp[r + 1], xp, std::size_t{1}, std::size_t{0});
  });
}

template <typename T>
void CsrMatrix<T>::spmv_multi(std::span<const T> x, std::span<T> y, int num_rhs) const {
  CSCV_CHECK(num_rhs >= 1);
  if (num_rhs == 1) {
    spmv(x, y);
    return;
  }
  CSCV_CHECK(x.size() == static_cast<std::size_t>(cols_) * static_cast<std::size_t>(num_rhs));
  CSCV_CHECK(y.size() == static_cast<std::size_t>(rows_) * static_cast<std::size_t>(num_rhs));
  const offset_t* rp = row_ptr_.data();
  const index_t* ci = col_idx_.data();
  const T* v = values_.data();
  const T* xp = x.data();
  T* yp = y.data();
  // Column-outer on purpose: each column's dot product goes through the same
  // row_dot instantiation single-RHS spmv uses, so column c of the fused
  // apply stays bitwise identical to spmv on that column (the batched
  // solvers' determinism contract). A lane-parallel acc[] over columns
  // invites an in-order vectorized reduction — separately rounded products
  // instead of the single-RHS fused chain — which breaks exactly that.
  // The row's values/indices stay hot in cache across the k passes.
  const std::size_t kk = static_cast<std::size_t>(num_rhs);
  util::parallel_for(0, static_cast<std::size_t>(rows_), [&](std::size_t r) {
    T* yr = yp + r * kk;
    for (std::size_t c = 0; c < kk; ++c) {
      yr[c] = row_dot(v, ci, rp[r], rp[r + 1], xp, kk, c);
    }
  });
}

template <typename T>
void CsrMatrix<T>::spmv_transpose_serial(std::span<const T> y, std::span<T> x) const {
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  std::fill(x.begin(), x.end(), T(0));
  const offset_t* rp = row_ptr_.data();
  const index_t* ci = col_idx_.data();
  const T* v = values_.data();
  for (index_t r = 0; r < rows_; ++r) {
    row_scatter(v, ci, rp[static_cast<std::size_t>(r)], rp[static_cast<std::size_t>(r) + 1],
                y[static_cast<std::size_t>(r)], x.data(), std::size_t{1}, std::size_t{0});
  }
}

template <typename T>
void CsrMatrix<T>::spmv_transpose(std::span<const T> y, std::span<T> x) const {
  util::AlignedVector<T> scratch;
  spmv_transpose(y, x, scratch);
}

template <typename T>
void CsrMatrix<T>::spmv_transpose(std::span<const T> y, std::span<T> x,
                                  util::AlignedVector<T>& scratch) const {
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  const int slots = util::max_threads();
  if (slots == 1) {
    spmv_transpose_serial(y, x);
    return;
  }
  // Scatter into per-slot private copies of x, then tree-free flat
  // reduction: each thread sums one contiguous slice over all copies.
  // Slots are striped over however many threads actually run, so a scratch
  // sized for one thread count stays correct (just oversized) for another.
  const std::size_t n = x.size();
  const std::size_t need = static_cast<std::size_t>(slots) * n;
  if (scratch.size() < need) scratch.resize(need);
  util::parallel_region([&](int tid, int nthreads) {
    for (int slot = tid; slot < slots; slot += nthreads) {
      T* xt = scratch.data() + static_cast<std::size_t>(slot) * n;
      std::fill_n(xt, n, T(0));
      auto [r0, r1] = util::static_partition(static_cast<std::size_t>(rows_), slots, slot);
      for (std::size_t r = r0; r < r1; ++r) {
        row_scatter(values_.data(), col_idx_.data(), row_ptr_[r], row_ptr_[r + 1], y[r], xt,
                    std::size_t{1}, std::size_t{0});
      }
    }
  });
  util::parallel_region([&](int tid, int nthreads) {
    auto [c0, c1] = util::static_partition(n, nthreads, tid);
    for (std::size_t c = c0; c < c1; ++c) {
      T acc = T(0);
      for (int t = 0; t < slots; ++t) acc += scratch[static_cast<std::size_t>(t) * n + c];
      x[c] = acc;
    }
  });
}

template <typename T>
void CsrMatrix<T>::spmv_transpose_multi(std::span<const T> y, std::span<T> x, int num_rhs,
                                        util::AlignedVector<T>& scratch) const {
  CSCV_CHECK(num_rhs >= 1);
  if (num_rhs == 1) {
    spmv_transpose(y, x, scratch);
    return;
  }
  CSCV_CHECK(y.size() == static_cast<std::size_t>(rows_) * static_cast<std::size_t>(num_rhs));
  CSCV_CHECK(x.size() == static_cast<std::size_t>(cols_) * static_cast<std::size_t>(num_rhs));
  const std::size_t kk = static_cast<std::size_t>(num_rhs);
  const int slots = util::max_threads();
  if (slots == 1) {
    // Serial scatter, column-outer within each row: per column the adds hit
    // x in exactly spmv_transpose_serial's nonzero order, through the same
    // row_scatter instantiation, so each column stays bitwise identical to
    // a single-RHS transpose.
    std::fill(x.begin(), x.end(), T(0));
    const offset_t* rp = row_ptr_.data();
    const index_t* ci = col_idx_.data();
    const T* v = values_.data();
    for (index_t r = 0; r < rows_; ++r) {
      const T* yr = y.data() + static_cast<std::size_t>(r) * kk;
      for (std::size_t c = 0; c < kk; ++c) {
        row_scatter(v, ci, rp[static_cast<std::size_t>(r)], rp[static_cast<std::size_t>(r) + 1],
                    yr[c], x.data(), kk, c);
      }
    }
    return;
  }
  // Per-slot private copies + flat reduction, mirroring the single-RHS row
  // partition and slot order — and the shared row_scatter per column for
  // the same contraction-matching reason as the serial path — so every
  // column reduces bitwise identically to a single-RHS transpose.
  const std::size_t n = static_cast<std::size_t>(cols_) * kk;
  const std::size_t need = static_cast<std::size_t>(slots) * n;
  if (scratch.size() < need) scratch.resize(need);
  util::parallel_region([&](int tid, int nthreads) {
    for (int slot = tid; slot < slots; slot += nthreads) {
      T* xt = scratch.data() + static_cast<std::size_t>(slot) * n;
      std::fill_n(xt, n, T(0));
      auto [r0, r1] = util::static_partition(static_cast<std::size_t>(rows_), slots, slot);
      for (std::size_t r = r0; r < r1; ++r) {
        const T* yr = y.data() + r * kk;
        for (std::size_t c = 0; c < kk; ++c) {
          row_scatter(values_.data(), col_idx_.data(), row_ptr_[r], row_ptr_[r + 1], yr[c],
                      xt, kk, c);
        }
      }
    }
  });
  util::parallel_region([&](int tid, int nthreads) {
    auto [c0, c1] = util::static_partition(n, nthreads, tid);
    for (std::size_t c = c0; c < c1; ++c) {
      T acc = T(0);
      for (int t = 0; t < slots; ++t) acc += scratch[static_cast<std::size_t>(t) * n + c];
      x[c] = acc;
    }
  });
}

template <typename T>
std::size_t CsrMatrix<T>::matrix_bytes() const {
  return values_.size() * sizeof(T) + col_idx_.size() * sizeof(index_t) +
         row_ptr_.size() * sizeof(offset_t);
}

template <typename T>
CooMatrix<T> CsrMatrix<T>::to_coo() const {
  CooMatrix<T> coo(rows_, cols_);
  coo.reserve(nnz());
  for (index_t r = 0; r < rows_; ++r) {
    for (offset_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      coo.add(r, col_idx_[static_cast<std::size_t>(k)], values_[static_cast<std::size_t>(k)]);
    }
  }
  coo.normalize();
  return coo;
}

template class CsrMatrix<float>;
template class CsrMatrix<double>;

}  // namespace cscv::sparse
