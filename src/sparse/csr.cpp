#include "sparse/csr.hpp"

#include <algorithm>

#include "util/assertx.hpp"
#include "util/parallel.hpp"

namespace cscv::sparse {

template <typename T>
CsrMatrix<T> CsrMatrix<T>::from_coo(const CooMatrix<T>& coo) {
  CSCV_CHECK_MSG(coo.normalized(), "CSR build requires a normalized COO");
  const auto rows = coo.rows();
  const auto nnz = coo.nnz();
  util::AlignedVector<offset_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (index_t r : coo.row_indices()) row_ptr[static_cast<std::size_t>(r) + 1]++;
  for (index_t r = 0; r < rows; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] += row_ptr[static_cast<std::size_t>(r)];
  }
  util::AlignedVector<index_t> col_idx(coo.col_indices().begin(), coo.col_indices().end());
  util::AlignedVector<T> values(coo.values().begin(), coo.values().end());
  CSCV_CHECK(row_ptr.back() == nnz);
  return CsrMatrix(rows, coo.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

template <typename T>
CsrMatrix<T>::CsrMatrix(index_t rows, index_t cols, util::AlignedVector<offset_t> row_ptr,
                        util::AlignedVector<index_t> col_idx, util::AlignedVector<T> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  CSCV_CHECK(rows_ >= 0 && cols_ >= 0);
  CSCV_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1);
  CSCV_CHECK(col_idx_.size() == values_.size());
  CSCV_CHECK(row_ptr_.front() == 0);
  CSCV_CHECK(row_ptr_.back() == static_cast<offset_t>(values_.size()));
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows_); ++r) {
    CSCV_CHECK_MSG(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr must be nondecreasing");
  }
}

template <typename T>
void CsrMatrix<T>::spmv_serial(std::span<const T> x, std::span<T> y) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  const offset_t* rp = row_ptr_.data();
  const index_t* ci = col_idx_.data();
  const T* v = values_.data();
  for (index_t r = 0; r < rows_; ++r) {
    T acc = T(0);
    for (offset_t k = rp[r]; k < rp[r + 1]; ++k) {
      acc += v[k] * x[static_cast<std::size_t>(ci[k])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

template <typename T>
void CsrMatrix<T>::spmv(std::span<const T> x, std::span<T> y) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  const offset_t* rp = row_ptr_.data();
  const index_t* ci = col_idx_.data();
  const T* v = values_.data();
  T* yp = y.data();
  util::parallel_for(0, static_cast<std::size_t>(rows_), [&](std::size_t r) {
    T acc = T(0);
    for (offset_t k = rp[r]; k < rp[r + 1]; ++k) {
      acc += v[k] * x[static_cast<std::size_t>(ci[k])];
    }
    yp[r] = acc;
  });
}

template <typename T>
void CsrMatrix<T>::spmv_transpose_serial(std::span<const T> y, std::span<T> x) const {
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  std::fill(x.begin(), x.end(), T(0));
  for (index_t r = 0; r < rows_; ++r) {
    const T yr = y[static_cast<std::size_t>(r)];
    for (offset_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
          values_[static_cast<std::size_t>(k)] * yr;
    }
  }
}

template <typename T>
void CsrMatrix<T>::spmv_transpose(std::span<const T> y, std::span<T> x) const {
  util::AlignedVector<T> scratch;
  spmv_transpose(y, x, scratch);
}

template <typename T>
void CsrMatrix<T>::spmv_transpose(std::span<const T> y, std::span<T> x,
                                  util::AlignedVector<T>& scratch) const {
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  const int slots = util::max_threads();
  if (slots == 1) {
    spmv_transpose_serial(y, x);
    return;
  }
  // Scatter into per-slot private copies of x, then tree-free flat
  // reduction: each thread sums one contiguous slice over all copies.
  // Slots are striped over however many threads actually run, so a scratch
  // sized for one thread count stays correct (just oversized) for another.
  const std::size_t n = x.size();
  const std::size_t need = static_cast<std::size_t>(slots) * n;
  if (scratch.size() < need) scratch.resize(need);
  util::parallel_region([&](int tid, int nthreads) {
    for (int slot = tid; slot < slots; slot += nthreads) {
      T* xt = scratch.data() + static_cast<std::size_t>(slot) * n;
      std::fill_n(xt, n, T(0));
      auto [r0, r1] = util::static_partition(static_cast<std::size_t>(rows_), slots, slot);
      for (std::size_t r = r0; r < r1; ++r) {
        const T yr = y[r];
        for (offset_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
          xt[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
              values_[static_cast<std::size_t>(k)] * yr;
        }
      }
    }
  });
  util::parallel_region([&](int tid, int nthreads) {
    auto [c0, c1] = util::static_partition(n, nthreads, tid);
    for (std::size_t c = c0; c < c1; ++c) {
      T acc = T(0);
      for (int t = 0; t < slots; ++t) acc += scratch[static_cast<std::size_t>(t) * n + c];
      x[c] = acc;
    }
  });
}

template <typename T>
std::size_t CsrMatrix<T>::matrix_bytes() const {
  return values_.size() * sizeof(T) + col_idx_.size() * sizeof(index_t) +
         row_ptr_.size() * sizeof(offset_t);
}

template <typename T>
CooMatrix<T> CsrMatrix<T>::to_coo() const {
  CooMatrix<T> coo(rows_, cols_);
  coo.reserve(nnz());
  for (index_t r = 0; r < rows_; ++r) {
    for (offset_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      coo.add(r, col_idx_[static_cast<std::size_t>(k)], values_[static_cast<std::size_t>(k)]);
    }
  }
  coo.normalize();
  return coo;
}

template class CsrMatrix<float>;
template class CsrMatrix<double>;

}  // namespace cscv::sparse
