// Shared index/size types for the sparse-matrix library.
//
// Row and column counts in this project stay below 2^31 (the largest paper
// matrix has 4.2 M columns), so 32-bit indices are used for the per-nonzero
// arrays — index width is memory bandwidth, and bandwidth is the resource
// SpMV formats compete on. Offsets (row_ptr/col_ptr) are 64-bit because nnz
// can exceed 2^31 at paper scale.
#pragma once

#include <cstdint>
#include <string>

namespace cscv::sparse {

using index_t = std::int32_t;    // row/column index of a nonzero
using offset_t = std::int64_t;   // position into the nonzero arrays

/// Matrix dimensions bundled with nnz, shared across formats.
struct Shape {
  index_t rows = 0;
  index_t cols = 0;
  offset_t nnz = 0;

  friend bool operator==(const Shape&, const Shape&) = default;
};

/// Element precision, used by benches to label runs like the paper's
/// single/double columns.
enum class Precision { kFloat, kDouble };

template <typename T>
constexpr Precision precision_of() {
  if constexpr (sizeof(T) == 4) {
    return Precision::kFloat;
  } else {
    return Precision::kDouble;
  }
}

inline std::string precision_name(Precision p) {
  return p == Precision::kFloat ? "single" : "double";
}

}  // namespace cscv::sparse
