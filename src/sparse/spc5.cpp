#include "sparse/spc5.hpp"

#include <algorithm>

#include "simd/isa.hpp"
#include "util/assertx.hpp"
#include "util/prefix_sum.hpp"

namespace cscv::sparse {

template <typename T>
Spc5Matrix<T> Spc5Matrix<T>::from_csr(const CsrMatrix<T>& a, int rows_per_pack,
                                      int block_width) {
  CSCV_CHECK(rows_per_pack == 1 || rows_per_pack == 2 || rows_per_pack == 4);
  CSCV_CHECK(block_width == 4 || block_width == 8 || block_width == 16);

  Spc5Matrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.nnz_ = a.nnz();
  m.rows_per_pack_ = rows_per_pack;
  m.block_width_ = block_width;
  m.num_packs_ = static_cast<index_t>(
      util::ceil_div<std::size_t>(static_cast<std::size_t>(m.rows_),
                                  static_cast<std::size_t>(rows_per_pack)));

  auto row_ptr = a.row_ptr();
  auto col_idx = a.col_idx();
  auto vals = a.values();

  m.pack_block_ptr_.assign(static_cast<std::size_t>(m.num_packs_) + 1, 0);
  m.pack_val_ptr_.assign(static_cast<std::size_t>(m.num_packs_) + 1, 0);
  m.values_.reserve(static_cast<std::size_t>(m.nnz_) + static_cast<std::size_t>(block_width));

  // Per-row cursors into the CSR arrays, reused across blocks of a pack.
  offset_t cursor[4];
  offset_t row_end[4];

  for (index_t p = 0; p < m.num_packs_; ++p) {
    const index_t r0 = p * rows_per_pack;
    for (int i = 0; i < rows_per_pack; ++i) {
      const index_t r = r0 + i;
      cursor[i] = r < m.rows_ ? row_ptr[static_cast<std::size_t>(r)] : 0;
      row_end[i] = r < m.rows_ ? row_ptr[static_cast<std::size_t>(r) + 1] : 0;
    }
    while (true) {
      // Next uncovered column across the pack's rows.
      index_t c0 = m.cols_;
      bool any = false;
      for (int i = 0; i < rows_per_pack; ++i) {
        if (cursor[i] < row_end[i]) {
          c0 = std::min(c0, col_idx[static_cast<std::size_t>(cursor[i])]);
          any = true;
        }
      }
      if (!any) break;
      m.block_col_.push_back(c0);
      for (int i = 0; i < rows_per_pack; ++i) {
        std::uint16_t mask = 0;
        while (cursor[i] < row_end[i] &&
               col_idx[static_cast<std::size_t>(cursor[i])] < c0 + block_width) {
          mask |= static_cast<std::uint16_t>(
              1u << (col_idx[static_cast<std::size_t>(cursor[i])] - c0));
          m.values_.push_back(vals[static_cast<std::size_t>(cursor[i])]);
          ++cursor[i];
        }
        m.masks_.push_back(mask);
      }
    }
    m.pack_block_ptr_[static_cast<std::size_t>(p) + 1] =
        static_cast<offset_t>(m.block_col_.size());
    m.pack_val_ptr_[static_cast<std::size_t>(p) + 1] =
        static_cast<offset_t>(m.values_.size());
  }
  CSCV_CHECK(static_cast<offset_t>(m.values_.size()) == m.nnz_);
  // Tail slack so branch-free expansion may read one full vector past the
  // last value without faulting.
  m.values_.resize(m.values_.size() + static_cast<std::size_t>(block_width), T(0));
  return m;
}

template <typename T>
template <int R, int C, bool UseHw>
void Spc5Matrix<T>::spmv_kernel(std::span<const T> x, std::span<T> y) const {
  const index_t* block_col = block_col_.data();
  const std::uint16_t* masks = masks_.data();
  const T* vals = values_.data();
  T* yp = y.data();
  const T* xp = x.data();
  const index_t num_packs = num_packs_;
  const index_t rows = rows_;

#pragma omp parallel for schedule(static)
  for (index_t p = 0; p < num_packs; ++p) {
    alignas(64) T acc[R][C] = {};
    alignas(64) T expanded[C];
    const offset_t b0 = pack_block_ptr_[static_cast<std::size_t>(p)];
    const offset_t b1 = pack_block_ptr_[static_cast<std::size_t>(p) + 1];
    offset_t vcur = pack_val_ptr_[static_cast<std::size_t>(p)];
    for (offset_t b = b0; b < b1; ++b) {
      const auto col = static_cast<std::size_t>(block_col[static_cast<std::size_t>(b)]);
      // Fast path: read x straight from the vector. Only blocks touching
      // the last C-1 columns need the zero-padded copy (mask bits past the
      // edge are zero, but the x load itself must stay in bounds).
      alignas(64) T xbuf[C];
      const T* xv = xp + col;
      if (col + C > x.size()) {
        const std::size_t avail = x.size() - col;
        for (std::size_t l = 0; l < avail; ++l) xbuf[l] = xp[col + l];
        for (std::size_t l = avail; l < C; ++l) xbuf[l] = T(0);
        xv = xbuf;
      }
      // Degrade to soft expansion when no hardware path was compiled in for
      // this (type, width) — keeps every (R, C) combination instantiable.
      constexpr bool kHw = UseHw && simd::has_chunked_hardware_expand<T, C>();
      for (int i = 0; i < R; ++i) {
        const std::uint32_t mask = masks[static_cast<std::size_t>(b) * R + i];
        vcur += simd::expand_any<T, C, kHw>(vals + vcur, mask, expanded);
        for (int l = 0; l < C; ++l) acc[i][l] += expanded[l] * xv[l];
      }
    }
    for (int i = 0; i < R; ++i) {
      const index_t r = p * R + i;
      if (r >= rows) break;
      T s = T(0);
      for (int l = 0; l < C; ++l) s += acc[i][l];
      yp[r] = s;
    }
  }
}

template <typename T>
template <bool UseHw>
void Spc5Matrix<T>::spmv_dispatch(std::span<const T> x, std::span<T> y) const {
  const int key = rows_per_pack_ * 100 + block_width_;
  switch (key) {
    case 104: spmv_kernel<1, 4, UseHw>(x, y); return;
    case 108: spmv_kernel<1, 8, UseHw>(x, y); return;
    case 116: spmv_kernel<1, 16, UseHw>(x, y); return;
    case 204: spmv_kernel<2, 4, UseHw>(x, y); return;
    case 208: spmv_kernel<2, 8, UseHw>(x, y); return;
    case 216: spmv_kernel<2, 16, UseHw>(x, y); return;
    case 404: spmv_kernel<4, 4, UseHw>(x, y); return;
    case 408: spmv_kernel<4, 8, UseHw>(x, y); return;
    case 416: spmv_kernel<4, 16, UseHw>(x, y); return;
    default: CSCV_CHECK_MSG(false, "unsupported SPC5 kernel beta(" << rows_per_pack_ << ","
                                                                   << block_width_ << ")");
  }
}

template <typename T>
void Spc5Matrix<T>::spmv(std::span<const T> x, std::span<T> y, simd::ExpandPath path) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  bool use_hw = false;
  switch (path) {
    case simd::ExpandPath::kHardware: use_hw = true; break;
    case simd::ExpandPath::kSoftware: use_hw = false; break;
    case simd::ExpandPath::kAuto:
      use_hw = simd::cpu_isa().avx512f && simd::kCompiledAvx512f;
      break;
  }
  if (use_hw) {
    spmv_dispatch<true>(x, y);
  } else {
    spmv_dispatch<false>(x, y);
  }
}

template <typename T>
std::size_t Spc5Matrix<T>::matrix_bytes() const {
  // Tail slack is excluded: it is never read on the masked path and exists
  // only to keep branch-free expansion in-bounds.
  return static_cast<std::size_t>(nnz_) * sizeof(T) + block_col_.size() * sizeof(index_t) +
         masks_.size() * sizeof(std::uint16_t) +
         (pack_block_ptr_.size() + pack_val_ptr_.size()) * sizeof(offset_t);
}

template class Spc5Matrix<float>;
template class Spc5Matrix<double>;

}  // namespace cscv::sparse
