// Compressed Sparse Column — the paper's Algorithm 1 baseline.
//
// Column-major twin of CSR; the MKL-CSC stand-in. The parallel kernel uses
// per-thread private y copies plus a reduction, the same scheme the paper
// describes for its own multithreaded CSCV (Section IV-E), because columns
// scatter into shared y rows.
#pragma once

#include <span>

#include "sparse/coo.hpp"
#include "sparse/types.hpp"
#include "util/aligned_vector.hpp"

namespace cscv::sparse {

template <typename T>
class CscMatrix {
 public:
  CscMatrix() = default;

  static CscMatrix from_coo(const CooMatrix<T>& coo);

  CscMatrix(index_t rows, index_t cols, util::AlignedVector<offset_t> col_ptr,
            util::AlignedVector<index_t> row_idx, util::AlignedVector<T> values);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return static_cast<offset_t>(values_.size()); }
  [[nodiscard]] Shape shape() const { return {rows_, cols_, nnz()}; }

  [[nodiscard]] std::span<const offset_t> col_ptr() const { return col_ptr_; }
  [[nodiscard]] std::span<const index_t> row_idx() const { return row_idx_; }
  [[nodiscard]] std::span<const T> values() const { return values_; }

  /// y = A x, serial (Algorithm 1 of the paper).
  void spmv_serial(std::span<const T> x, std::span<T> y) const;

  /// y = A x, parallel: column partitioning + per-thread y + reduction.
  void spmv(std::span<const T> x, std::span<T> y) const;

  /// Same, reusing caller-held accumulator scratch: grown on first use to
  /// threads * rows elements, then reused allocation-free across calls.
  void spmv(std::span<const T> x, std::span<T> y, util::AlignedVector<T>& scratch) const;

  /// x = A^T y. CSC of A is CSR of A^T, so this is a gather kernel and
  /// trivially row-parallel — the reason CSC-style formats suit ICD-type
  /// reconstruction algorithms (paper Section III).
  void spmv_transpose(std::span<const T> y, std::span<T> x) const;

  [[nodiscard]] std::size_t matrix_bytes() const;

  [[nodiscard]] CooMatrix<T> to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  util::AlignedVector<offset_t> col_ptr_;   // cols_ + 1 entries
  util::AlignedVector<index_t> row_idx_;    // nnz entries
  util::AlignedVector<T> values_;           // nnz entries
};

extern template class CscMatrix<float>;
extern template class CscMatrix<double>;

}  // namespace cscv::sparse
