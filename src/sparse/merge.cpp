#include "sparse/merge.hpp"

#include <algorithm>

#include "util/aligned_vector.hpp"
#include "util/assertx.hpp"
#include "util/parallel.hpp"

namespace cscv::sparse {

MergeCoord merge_path_search(offset_t diagonal, std::span<const offset_t> row_end,
                             offset_t nnz) {
  const auto rows = static_cast<offset_t>(row_end.size());
  // The point (i, d - i) lies on the path iff row_end[i-1] <= d-i (all row
  // boundaries before i sort ahead of the (d-i)-th nonzero) and
  // row_end[i] > d-i-1. Binary-search the smallest i violating the latter.
  offset_t lo = std::max<offset_t>(0, diagonal - nnz);
  offset_t hi = std::min(diagonal, rows);
  while (lo < hi) {
    const offset_t mid = lo + (hi - lo) / 2;
    if (row_end[static_cast<std::size_t>(mid)] <= diagonal - mid - 1) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {static_cast<index_t>(lo), diagonal - lo};
}

template <typename T>
void merge_spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y) {
  CSCV_CHECK(static_cast<index_t>(x.size()) == a.cols());
  CSCV_CHECK(static_cast<index_t>(y.size()) == a.rows());
  const auto rows = a.rows();
  const offset_t nnz = a.nnz();
  // row_end view: row_ptr shifted by one (row i ends at row_ptr[i+1]).
  std::span<const offset_t> row_end = a.row_ptr().subspan(1);
  const index_t* ci = a.col_idx().data();
  const T* v = a.values().data();
  T* yp = y.data();

  const int threads = util::max_threads();
  util::AlignedVector<index_t> carry_row(static_cast<std::size_t>(threads), rows);
  util::AlignedVector<T> carry_val(static_cast<std::size_t>(threads), T(0));

  const offset_t total = static_cast<offset_t>(rows) + nnz;
  util::parallel_region([&](int tid, int nthreads) {
    const offset_t d0 = total * tid / nthreads;
    const offset_t d1 = total * (tid + 1) / nthreads;
    MergeCoord c = merge_path_search(d0, row_end, nnz);
    const MergeCoord c_end = merge_path_search(d1, row_end, nnz);

    index_t i = c.row;
    offset_t j = c.nz;
    // Finish every row whose boundary lies inside this thread's diagonals.
    for (; i < c_end.row; ++i) {
      T acc = T(0);
      const offset_t end = row_end[static_cast<std::size_t>(i)];
      for (; j < end; ++j) acc += v[j] * x[static_cast<std::size_t>(ci[j])];
      yp[i] = acc;  // leading partial from the previous thread arrives via carry
    }
    // Trailing partial row: accumulate and hand to the fix-up pass.
    T acc = T(0);
    for (; j < c_end.nz; ++j) acc += v[j] * x[static_cast<std::size_t>(ci[j])];
    if (tid < threads) {
      carry_row[static_cast<std::size_t>(tid)] = i;
      carry_val[static_cast<std::size_t>(tid)] = acc;
    }
  });

  // Serial carry fix-up: add each thread's trailing partial into the row it
  // belongs to. A thread whose range ended exactly on a row boundary carries
  // zero; a thread past the last row carries into i == rows and is skipped.
  for (int t = 0; t < threads; ++t) {
    const index_t r = carry_row[static_cast<std::size_t>(t)];
    if (r < rows) yp[r] += carry_val[static_cast<std::size_t>(t)];
  }
}

template void merge_spmv<float>(const CsrMatrix<float>&, std::span<const float>,
                                std::span<float>);
template void merge_spmv<double>(const CsrMatrix<double>&, std::span<const double>,
                                 std::span<double>);

}  // namespace cscv::sparse
