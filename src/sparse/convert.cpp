#include "sparse/convert.hpp"

namespace cscv::sparse {

template <typename T>
CsrMatrix<T> csr_from_csc(const CscMatrix<T>& a) {
  const auto rows = static_cast<std::size_t>(a.rows());
  const auto nnz = static_cast<std::size_t>(a.nnz());
  auto col_ptr = a.col_ptr();
  auto row_idx = a.row_idx();
  auto vals = a.values();

  util::AlignedVector<offset_t> row_ptr(rows + 1, 0);
  for (index_t r : row_idx) row_ptr[static_cast<std::size_t>(r) + 1]++;
  for (std::size_t r = 0; r < rows; ++r) row_ptr[r + 1] += row_ptr[r];

  util::AlignedVector<index_t> col_idx(nnz);
  util::AlignedVector<T> values(nnz);
  util::AlignedVector<offset_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t c = 0; c < a.cols(); ++c) {
    for (offset_t k = col_ptr[static_cast<std::size_t>(c)];
         k < col_ptr[static_cast<std::size_t>(c) + 1]; ++k) {
      const auto r = static_cast<std::size_t>(row_idx[static_cast<std::size_t>(k)]);
      const auto dst = static_cast<std::size_t>(cursor[r]++);
      col_idx[dst] = c;
      values[dst] = vals[static_cast<std::size_t>(k)];
    }
  }
  return CsrMatrix<T>(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                      std::move(values));
}

template <typename T>
CscMatrix<T> csc_from_csr(const CsrMatrix<T>& a) {
  const auto cols = static_cast<std::size_t>(a.cols());
  const auto nnz = static_cast<std::size_t>(a.nnz());
  auto row_ptr = a.row_ptr();
  auto col_idx = a.col_idx();
  auto vals = a.values();

  util::AlignedVector<offset_t> col_ptr(cols + 1, 0);
  for (index_t c : col_idx) col_ptr[static_cast<std::size_t>(c) + 1]++;
  for (std::size_t c = 0; c < cols; ++c) col_ptr[c + 1] += col_ptr[c];

  util::AlignedVector<index_t> row_idx(nnz);
  util::AlignedVector<T> values(nnz);
  util::AlignedVector<offset_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = row_ptr[static_cast<std::size_t>(r)];
         k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const auto c = static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]);
      const auto dst = static_cast<std::size_t>(cursor[c]++);
      row_idx[dst] = r;
      values[dst] = vals[static_cast<std::size_t>(k)];
    }
  }
  return CscMatrix<T>(a.rows(), a.cols(), std::move(col_ptr), std::move(row_idx),
                      std::move(values));
}

template CsrMatrix<float> csr_from_csc<float>(const CscMatrix<float>&);
template CsrMatrix<double> csr_from_csc<double>(const CscMatrix<double>&);
template CscMatrix<float> csc_from_csr<float>(const CsrMatrix<float>&);
template CscMatrix<double> csc_from_csr<double>(const CsrMatrix<double>&);

}  // namespace cscv::sparse
