// Random sparse-matrix generators for tests and micro-benchmarks.
//
// Property tests exercise every SpMV kernel on matrices with no CT
// structure at all — the general formats must be correct on arbitrary
// sparsity patterns, not just integral-operator ones.
#pragma once

#include <cstdint>

#include "sparse/coo.hpp"
#include "util/rng.hpp"

namespace cscv::sparse {

/// Uniform random matrix: each entry present independently with probability
/// `density`, values uniform in [-1, 1].
template <typename T>
CooMatrix<T> random_uniform(index_t rows, index_t cols, double density, std::uint64_t seed) {
  util::Rng rng(seed);
  CooMatrix<T> m(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (rng.flip(density)) m.add(r, c, static_cast<T>(rng.uniform(-1.0, 1.0)));
    }
  }
  m.normalize();
  return m;
}

/// Banded matrix with random in-band fill — closer to CT structure (bounded
/// row spans) while still irregular.
template <typename T>
CooMatrix<T> random_banded(index_t n, index_t half_band, double density, std::uint64_t seed) {
  util::Rng rng(seed);
  CooMatrix<T> m(n, n);
  for (index_t r = 0; r < n; ++r) {
    const index_t c0 = r > half_band ? r - half_band : 0;
    const index_t c1 = r + half_band < n ? r + half_band : n - 1;
    for (index_t c = c0; c <= c1; ++c) {
      if (rng.flip(density)) m.add(r, c, static_cast<T>(rng.uniform(-1.0, 1.0)));
    }
  }
  m.normalize();
  return m;
}

/// Matrix with power-law row lengths (hub rows), stressing load balancing —
/// the regime merge-path/segmented-sum formats are built for.
template <typename T>
CooMatrix<T> random_power_law(index_t rows, index_t cols, index_t max_row_len,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  CooMatrix<T> m(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    // len ~ max / (1 + rank): a few heavy rows, a long light tail.
    const auto len = static_cast<index_t>(
        std::max<std::int64_t>(1, max_row_len / (1 + rng.uniform_int(0, rows - 1))));
    for (index_t k = 0; k < len; ++k) {
      m.add(r, static_cast<index_t>(rng.uniform_int(0, cols - 1)),
            static_cast<T>(rng.uniform(-1.0, 1.0)));
    }
  }
  m.normalize();
  return m;
}

/// Random dense vector with entries in [lo, hi).
template <typename T>
util::AlignedVector<T> random_vector(std::size_t n, std::uint64_t seed, double lo = -1.0,
                                     double hi = 1.0) {
  util::Rng rng(seed);
  util::AlignedVector<T> v(n);
  for (auto& e : v) e = static_cast<T>(rng.uniform(lo, hi));
  return v;
}

}  // namespace cscv::sparse
