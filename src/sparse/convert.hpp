// Direct conversions between compressed layouts.
//
// Going through COO costs a full comparison sort of the nonzeros; the
// CSR <-> CSC transposition is a counting sort and runs in linear time —
// the difference is minutes at paper-scale nnz.
#pragma once

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace cscv::sparse {

/// CSR built from CSC in O(nnz): within each row, columns come out
/// ascending (stable pass over the column-major order).
template <typename T>
CsrMatrix<T> csr_from_csc(const CscMatrix<T>& a);

/// CSC built from CSR in O(nnz); rows ascend within each column.
template <typename T>
CscMatrix<T> csc_from_csr(const CsrMatrix<T>& a);

extern template CsrMatrix<float> csr_from_csc<float>(const CscMatrix<float>&);
extern template CsrMatrix<double> csr_from_csc<double>(const CscMatrix<double>&);
extern template CscMatrix<float> csc_from_csr<float>(const CsrMatrix<float>&);
extern template CscMatrix<double> csc_from_csr<double>(const CsrMatrix<double>&);

}  // namespace cscv::sparse
