// Structural statistics of sparse matrices.
//
// Used by the dataset table (Table II), by the parameter-selection benches,
// and by tests asserting the CT matrices' structure (paper property P3:
// near-uniform nnz per column).
#pragma once

#include <cstdint>

#include "sparse/coo.hpp"
#include "sparse/types.hpp"

namespace cscv::sparse {

struct DegreeStats {
  index_t min = 0;
  index_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
  index_t empty = 0;  // rows/columns with no nonzeros
};

struct MatrixStats {
  Shape shape;
  DegreeStats row;  // nnz per row
  DegreeStats col;  // nnz per column
  double density = 0.0;
  index_t bandwidth = 0;  // max |row - col| over nonzeros
};

template <typename T>
MatrixStats compute_stats(const CooMatrix<T>& m);

extern template MatrixStats compute_stats<float>(const CooMatrix<float>&);
extern template MatrixStats compute_stats<double>(const CooMatrix<double>&);

}  // namespace cscv::sparse
