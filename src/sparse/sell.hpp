// SELL-C-sigma — sliced ELLPACK with row sorting, the ESB stand-in.
//
// Rows are grouped into slices of C rows; within a sorting window of sigma
// rows, rows are ordered by descending length so rows sharing a slice have
// similar lengths and padding stays small. Values are stored slice-local
// column-major so one SIMD lane processes one row. This reproduces the
// padding/vectorization trade-off of Intel's ESB format the paper compares
// against (ESB = ELLPACK Sparse Block with bitmasks; SELL-C-sigma is its
// published descendant with sorting instead of masks).
#pragma once

#include <span>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/types.hpp"
#include "util/aligned_vector.hpp"

namespace cscv::sparse {

template <typename T>
class SellMatrix {
 public:
  SellMatrix() = default;

  /// `slice_height` is C (SIMD rows per slice); `sort_window` is sigma in
  /// rows (0 means no sorting). C must be a power of two <= 64.
  static SellMatrix from_coo(const CooMatrix<T>& coo, int slice_height = 8,
                             int sort_window = 1024);

  /// Same construction straight from CSR (no sort through COO).
  static SellMatrix from_csr(const CsrMatrix<T>& csr, int slice_height = 8,
                             int sort_window = 1024);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return nnz_; }
  [[nodiscard]] int slice_height() const { return slice_height_; }

  /// Stored entries including padding.
  [[nodiscard]] offset_t stored() const { return static_cast<offset_t>(values_.size()); }

  /// y = A x, OpenMP slice-parallel.
  void spmv(std::span<const T> x, std::span<T> y) const;

  [[nodiscard]] std::size_t matrix_bytes() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  offset_t nnz_ = 0;
  int slice_height_ = 0;
  index_t num_slices_ = 0;
  util::AlignedVector<offset_t> slice_ptr_;   // start of each slice's values
  util::AlignedVector<index_t> slice_width_;  // max row length in slice
  util::AlignedVector<index_t> perm_;         // sorted position -> original row
  util::AlignedVector<index_t> col_idx_;      // slice-local column-major
  util::AlignedVector<T> values_;
};

extern template class SellMatrix<float>;
extern template class SellMatrix<double>;

}  // namespace cscv::sparse
