#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "util/assertx.hpp"

namespace cscv::sparse {

namespace {

DegreeStats degree_stats(const std::vector<index_t>& counts) {
  DegreeStats s;
  if (counts.empty()) return s;
  s.min = *std::min_element(counts.begin(), counts.end());
  s.max = *std::max_element(counts.begin(), counts.end());
  double sum = 0.0;
  for (index_t c : counts) {
    sum += c;
    if (c == 0) ++s.empty;
  }
  s.mean = sum / static_cast<double>(counts.size());
  double var = 0.0;
  for (index_t c : counts) var += (c - s.mean) * (c - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(counts.size()));
  return s;
}

}  // namespace

template <typename T>
MatrixStats compute_stats(const CooMatrix<T>& m) {
  MatrixStats s;
  s.shape = m.shape();
  std::vector<index_t> row_counts(static_cast<std::size_t>(m.rows()), 0);
  std::vector<index_t> col_counts(static_cast<std::size_t>(m.cols()), 0);
  index_t bw = 0;
  auto rows = m.row_indices();
  auto cols = m.col_indices();
  for (std::size_t k = 0; k < rows.size(); ++k) {
    row_counts[static_cast<std::size_t>(rows[k])]++;
    col_counts[static_cast<std::size_t>(cols[k])]++;
    bw = std::max(bw, static_cast<index_t>(std::abs(static_cast<long>(rows[k]) -
                                                    static_cast<long>(cols[k]))));
  }
  s.row = degree_stats(row_counts);
  s.col = degree_stats(col_counts);
  const double cells = static_cast<double>(m.rows()) * static_cast<double>(m.cols());
  s.density = cells > 0 ? static_cast<double>(m.nnz()) / cells : 0.0;
  s.bandwidth = bw;
  return s;
}

template MatrixStats compute_stats<float>(const CooMatrix<float>&);
template MatrixStats compute_stats<double>(const CooMatrix<double>&);

}  // namespace cscv::sparse
