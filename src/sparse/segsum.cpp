#include "sparse/segsum.hpp"

#include <algorithm>

#include "util/assertx.hpp"
#include "util/parallel.hpp"
#include "util/prefix_sum.hpp"

namespace cscv::sparse {

template <typename T>
SegSumCsr<T>::SegSumCsr(const CsrMatrix<T>& a, int tile_size)
    : a_(&a), tile_size_(tile_size) {
  CSCV_CHECK(tile_size >= 1);
  const offset_t nnz = a.nnz();
  num_tiles_ = static_cast<index_t>(util::ceil_div<offset_t>(std::max<offset_t>(nnz, 1),
                                                             tile_size));
  tile_row_.resize(static_cast<std::size_t>(num_tiles_));
  auto row_ptr = a.row_ptr();
  for (index_t t = 0; t < num_tiles_; ++t) {
    const offset_t start = static_cast<offset_t>(t) * tile_size;
    // Largest row whose first nonzero offset is <= start. Empty rows that
    // share the offset are fine: the fold pass adds zero for them.
    auto it = std::upper_bound(row_ptr.begin(), row_ptr.end(), start);
    tile_row_[static_cast<std::size_t>(t)] =
        static_cast<index_t>(std::distance(row_ptr.begin(), it)) - 1;
  }
}

template <typename T>
void SegSumCsr<T>::spmv(std::span<const T> x, std::span<T> y) const {
  const CsrMatrix<T>& a = *a_;
  CSCV_CHECK(static_cast<index_t>(x.size()) == a.cols());
  CSCV_CHECK(static_cast<index_t>(y.size()) == a.rows());
  const offset_t nnz = a.nnz();
  auto row_ptr = a.row_ptr();
  const index_t* ci = a.col_idx().data();
  const T* v = a.values().data();
  T* yp = y.data();
  const index_t rows = a.rows();

  std::fill(y.begin(), y.end(), T(0));

  util::AlignedVector<index_t> carry_row(static_cast<std::size_t>(num_tiles_), rows);
  util::AlignedVector<T> carry_val(static_cast<std::size_t>(num_tiles_), T(0));

#pragma omp parallel
  {
    // Per-thread product buffer; the product pass below is the vectorizable
    // phase that motivates the format (no row logic inside it).
    util::AlignedVector<T> tmp(static_cast<std::size_t>(tile_size_));
#pragma omp for schedule(static)
    for (index_t t = 0; t < num_tiles_; ++t) {
      const offset_t start = static_cast<offset_t>(t) * tile_size_;
      const offset_t end = std::min(nnz, start + tile_size_);
      const auto len = static_cast<std::size_t>(end - start);

      for (std::size_t k = 0; k < len; ++k) {
        tmp[k] = v[start + static_cast<offset_t>(k)] *
                 x[static_cast<std::size_t>(ci[start + static_cast<offset_t>(k)])];
      }

      // Segmented fold: rows ending inside (start, end] are finished here;
      // the trailing open segment becomes this tile's carry.
      index_t r = tile_row_[static_cast<std::size_t>(t)];
      offset_t k = start;
      while (r < rows && row_ptr[static_cast<std::size_t>(r) + 1] <= end) {
        T s = T(0);
        const offset_t row_end = row_ptr[static_cast<std::size_t>(r) + 1];
        for (; k < row_end; ++k) s += tmp[static_cast<std::size_t>(k - start)];
        // Each row's end offset lies in exactly one tile, so this store is
        // race-free; earlier tiles' contributions arrive via the carry pass.
        yp[r] += s;
        ++r;
      }
      T s = T(0);
      for (; k < end; ++k) s += tmp[static_cast<std::size_t>(k - start)];
      carry_row[static_cast<std::size_t>(t)] = r;
      carry_val[static_cast<std::size_t>(t)] = s;
    }
  }

  for (index_t t = 0; t < num_tiles_; ++t) {
    const index_t r = carry_row[static_cast<std::size_t>(t)];
    if (r < rows) yp[r] += carry_val[static_cast<std::size_t>(t)];
  }
}

template <typename T>
std::size_t SegSumCsr<T>::matrix_bytes() const {
  return a_->matrix_bytes() + tile_row_.size() * sizeof(index_t);
}

template class SegSumCsr<float>;
template class SegSumCsr<double>;

}  // namespace cscv::sparse
