// Matrix Market (.mtx) I/O.
//
// Lets users bring external matrices into the library and lets the CT
// builders export system matrices for inspection with standard tools.
// Supports the `matrix coordinate real general/symmetric` and
// `matrix coordinate pattern` headers, which covers the SuiteSparse corpus.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace cscv::sparse {

/// Reads a Matrix Market file into COO (1-based indices converted, symmetric
/// matrices expanded, result normalized). Throws CheckError on format errors.
template <typename T>
CooMatrix<T> read_matrix_market(std::istream& in);

template <typename T>
CooMatrix<T> read_matrix_market_file(const std::string& path);

/// Writes COO as `matrix coordinate real general`.
template <typename T>
void write_matrix_market(std::ostream& out, const CooMatrix<T>& m);

template <typename T>
void write_matrix_market_file(const std::string& path, const CooMatrix<T>& m);

}  // namespace cscv::sparse
