// Merge-based CSR SpMV (Merrill & Garland, SC'16) — the "Merge" baseline.
//
// The (row boundary, nonzero) consumption of CSR SpMV is viewed as merging
// the row_ptr array with the nonzero index sequence; splitting the merge
// path into equal-length diagonals gives every thread the same amount of
// row+nonzero work regardless of row-length skew. Threads finish whole rows
// locally and hand the trailing partial row to a serial carry fix-up.
#pragma once

#include <span>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace cscv::sparse {

/// Coordinate on the merge path: `row` counts consumed row boundaries,
/// `nz` counts consumed nonzeros; row + nz == diagonal.
struct MergeCoord {
  index_t row = 0;
  offset_t nz = 0;
};

/// 2-D binary search for the merge-path point on `diagonal`.
/// Exposed for direct testing of the partitioner's invariants.
MergeCoord merge_path_search(offset_t diagonal, std::span<const offset_t> row_end,
                             offset_t nnz);

/// y = A x with merge-path load balancing across OpenMP threads.
template <typename T>
void merge_spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y);

extern template void merge_spmv<float>(const CsrMatrix<float>&, std::span<const float>,
                                       std::span<float>);
extern template void merge_spmv<double>(const CsrMatrix<double>&, std::span<const double>,
                                        std::span<double>);

}  // namespace cscv::sparse
