#include "sparse/bcsr.hpp"

#include <algorithm>
#include <map>

#include "util/assertx.hpp"
#include "util/prefix_sum.hpp"

namespace cscv::sparse {

template <typename T>
BcsrMatrix<T> BcsrMatrix<T>::from_csr(const CsrMatrix<T>& a, int block_rows,
                                      int block_cols) {
  auto valid = [](int v) { return v == 1 || v == 2 || v == 4 || v == 8; };
  CSCV_CHECK_MSG(valid(block_rows) && valid(block_cols),
                 "BCSR block dims must be in {1,2,4,8}");

  BcsrMatrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.nnz_ = a.nnz();
  m.block_rows_ = block_rows;
  m.block_cols_ = block_cols;
  m.num_block_rows_ = static_cast<index_t>(
      util::ceil_div<std::size_t>(static_cast<std::size_t>(m.rows_),
                                  static_cast<std::size_t>(block_rows)));

  auto row_ptr = a.row_ptr();
  auto col_idx = a.col_idx();
  auto vals = a.values();

  m.block_row_ptr_.assign(static_cast<std::size_t>(m.num_block_rows_) + 1, 0);
  const std::size_t blk_sz = static_cast<std::size_t>(block_rows) * block_cols;

  // Per block-row: collect touched block columns, then densify.
  std::map<index_t, std::size_t> touched;  // block col -> dense offset
  for (index_t br = 0; br < m.num_block_rows_; ++br) {
    touched.clear();
    const index_t r0 = br * block_rows;
    const index_t r1 = std::min<index_t>(r0 + block_rows, m.rows_);
    for (index_t r = r0; r < r1; ++r) {
      for (auto k = row_ptr[static_cast<std::size_t>(r)];
           k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        touched.emplace(col_idx[static_cast<std::size_t>(k)] / block_cols, 0);
      }
    }
    const std::size_t base = m.values_.size();
    std::size_t slot = 0;
    for (auto& [bc, off] : touched) {
      off = base + (slot++) * blk_sz;
      m.block_col_.push_back(bc);
    }
    m.values_.resize(base + touched.size() * blk_sz, T(0));
    for (index_t r = r0; r < r1; ++r) {
      for (auto k = row_ptr[static_cast<std::size_t>(r)];
           k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        const index_t c = col_idx[static_cast<std::size_t>(k)];
        const std::size_t off = touched[c / block_cols];
        m.values_[off + static_cast<std::size_t>(r - r0) * block_cols +
                  static_cast<std::size_t>(c % block_cols)] =
            vals[static_cast<std::size_t>(k)];
      }
    }
    m.block_row_ptr_[static_cast<std::size_t>(br) + 1] =
        static_cast<offset_t>(m.block_col_.size());
  }
  return m;
}

template <typename T>
template <int R, int C>
void BcsrMatrix<T>::spmv_kernel(std::span<const T> x, std::span<T> y) const {
  const index_t* bc = block_col_.data();
  const T* v = values_.data();
  const T* xp = x.data();
  T* yp = y.data();
  const index_t nbr = num_block_rows_;
  const index_t rows = rows_;
  const index_t cols = cols_;

#pragma omp parallel for schedule(static)
  for (index_t br = 0; br < nbr; ++br) {
    T acc[R] = {};
    for (offset_t b = block_row_ptr_[static_cast<std::size_t>(br)];
         b < block_row_ptr_[static_cast<std::size_t>(br) + 1]; ++b) {
      const index_t c0 = bc[static_cast<std::size_t>(b)] * C;
      const T* blk = v + static_cast<std::size_t>(b) * R * C;
      if (c0 + C <= cols) {
        for (int i = 0; i < R; ++i) {
          for (int j = 0; j < C; ++j) {
            acc[i] += blk[i * C + j] * xp[static_cast<std::size_t>(c0) + j];
          }
        }
      } else {  // edge block: fill columns past the matrix are zero anyway
        for (int i = 0; i < R; ++i) {
          for (int j = 0; j < C && c0 + j < cols; ++j) {
            acc[i] += blk[i * C + j] * xp[static_cast<std::size_t>(c0) + j];
          }
        }
      }
    }
    for (int i = 0; i < R; ++i) {
      const index_t r = br * R + i;
      if (r < rows) yp[r] = acc[i];
    }
  }
}

template <typename T>
void BcsrMatrix<T>::spmv(std::span<const T> x, std::span<T> y) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  const int key = block_rows_ * 10 + block_cols_;
  switch (key) {
    case 11: spmv_kernel<1, 1>(x, y); return;
    case 12: spmv_kernel<1, 2>(x, y); return;
    case 14: spmv_kernel<1, 4>(x, y); return;
    case 18: spmv_kernel<1, 8>(x, y); return;
    case 22: spmv_kernel<2, 2>(x, y); return;
    case 24: spmv_kernel<2, 4>(x, y); return;
    case 28: spmv_kernel<2, 8>(x, y); return;
    case 42: spmv_kernel<4, 2>(x, y); return;
    case 82: spmv_kernel<8, 2>(x, y); return;
    case 21: spmv_kernel<2, 1>(x, y); return;
    case 41: spmv_kernel<4, 1>(x, y); return;
    case 81: spmv_kernel<8, 1>(x, y); return;
    case 44: spmv_kernel<4, 4>(x, y); return;
    case 48: spmv_kernel<4, 8>(x, y); return;
    case 84: spmv_kernel<8, 4>(x, y); return;
    case 88: spmv_kernel<8, 8>(x, y); return;
    default:
      CSCV_CHECK_MSG(false, "unsupported BCSR kernel " << block_rows_ << "x" << block_cols_);
  }
}

template <typename T>
std::size_t BcsrMatrix<T>::matrix_bytes() const {
  return values_.size() * sizeof(T) + block_col_.size() * sizeof(index_t) +
         block_row_ptr_.size() * sizeof(offset_t);
}

template class BcsrMatrix<float>;
template class BcsrMatrix<double>;

}  // namespace cscv::sparse
