#include "sparse/csc.hpp"

#include <algorithm>

#include "util/assertx.hpp"
#include "util/parallel.hpp"

namespace cscv::sparse {

template <typename T>
CscMatrix<T> CscMatrix<T>::from_coo(const CooMatrix<T>& coo) {
  CSCV_CHECK_MSG(coo.normalized(), "CSC build requires a normalized COO");
  const auto cols = coo.cols();
  const auto nnz = coo.nnz();
  util::AlignedVector<offset_t> col_ptr(static_cast<std::size_t>(cols) + 1, 0);
  for (index_t c : coo.col_indices()) col_ptr[static_cast<std::size_t>(c) + 1]++;
  for (index_t c = 0; c < cols; ++c) {
    col_ptr[static_cast<std::size_t>(c) + 1] += col_ptr[static_cast<std::size_t>(c)];
  }
  // COO is row-major sorted; counting-sort by column keeps rows ascending
  // within each column (stable pass over row-major order).
  util::AlignedVector<index_t> row_idx(static_cast<std::size_t>(nnz));
  util::AlignedVector<T> values(static_cast<std::size_t>(nnz));
  util::AlignedVector<offset_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
  auto rows_in = coo.row_indices();
  auto cols_in = coo.col_indices();
  auto vals_in = coo.values();
  for (offset_t k = 0; k < nnz; ++k) {
    const auto c = static_cast<std::size_t>(cols_in[static_cast<std::size_t>(k)]);
    const auto dst = static_cast<std::size_t>(cursor[c]++);
    row_idx[dst] = rows_in[static_cast<std::size_t>(k)];
    values[dst] = vals_in[static_cast<std::size_t>(k)];
  }
  return CscMatrix(coo.rows(), cols, std::move(col_ptr), std::move(row_idx),
                   std::move(values));
}

template <typename T>
CscMatrix<T>::CscMatrix(index_t rows, index_t cols, util::AlignedVector<offset_t> col_ptr,
                        util::AlignedVector<index_t> row_idx, util::AlignedVector<T> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  CSCV_CHECK(rows_ >= 0 && cols_ >= 0);
  CSCV_CHECK(col_ptr_.size() == static_cast<std::size_t>(cols_) + 1);
  CSCV_CHECK(row_idx_.size() == values_.size());
  CSCV_CHECK(col_ptr_.front() == 0);
  CSCV_CHECK(col_ptr_.back() == static_cast<offset_t>(values_.size()));
  for (std::size_t c = 0; c < static_cast<std::size_t>(cols_); ++c) {
    CSCV_CHECK_MSG(col_ptr_[c] <= col_ptr_[c + 1], "col_ptr must be nondecreasing");
  }
}

template <typename T>
void CscMatrix<T>::spmv_serial(std::span<const T> x, std::span<T> y) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  std::fill(y.begin(), y.end(), T(0));
  const offset_t* cp = col_ptr_.data();
  const index_t* ri = row_idx_.data();
  const T* v = values_.data();
  for (index_t c = 0; c < cols_; ++c) {
    const T xc = x[static_cast<std::size_t>(c)];
    for (offset_t k = cp[c]; k < cp[c + 1]; ++k) {
      y[static_cast<std::size_t>(ri[k])] += v[k] * xc;
    }
  }
}

template <typename T>
void CscMatrix<T>::spmv(std::span<const T> x, std::span<T> y) const {
  util::AlignedVector<T> scratch;
  spmv(x, y, scratch);
}

template <typename T>
void CscMatrix<T>::spmv(std::span<const T> x, std::span<T> y,
                        util::AlignedVector<T>& scratch) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  const int slots = util::max_threads();
  if (slots == 1) {
    spmv_serial(x, y);
    return;
  }
  // Per-slot private copies of y + flat reduction. Slots are striped over
  // however many threads actually run, so a scratch sized for one thread
  // count stays correct (just oversized) for another.
  const std::size_t m = y.size();
  const std::size_t need = static_cast<std::size_t>(slots) * m;
  if (scratch.size() < need) scratch.resize(need);
  const offset_t* cp = col_ptr_.data();
  const index_t* ri = row_idx_.data();
  const T* v = values_.data();
  util::parallel_region([&](int tid, int nthreads) {
    for (int slot = tid; slot < slots; slot += nthreads) {
      T* yt = scratch.data() + static_cast<std::size_t>(slot) * m;
      std::fill_n(yt, m, T(0));
      auto [c0, c1] = util::static_partition(static_cast<std::size_t>(cols_), slots, slot);
      for (std::size_t c = c0; c < c1; ++c) {
        const T xc = x[c];
        for (offset_t k = cp[c]; k < cp[c + 1]; ++k) {
          yt[static_cast<std::size_t>(ri[k])] += v[k] * xc;
        }
      }
    }
  });
  util::parallel_region([&](int tid, int nthreads) {
    auto [r0, r1] = util::static_partition(m, nthreads, tid);
    for (std::size_t r = r0; r < r1; ++r) {
      T acc = T(0);
      for (int t = 0; t < slots; ++t) acc += scratch[static_cast<std::size_t>(t) * m + r];
      y[r] = acc;
    }
  });
}

template <typename T>
void CscMatrix<T>::spmv_transpose(std::span<const T> y, std::span<T> x) const {
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows_);
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols_);
  const offset_t* cp = col_ptr_.data();
  const index_t* ri = row_idx_.data();
  const T* v = values_.data();
  T* xp = x.data();
  util::parallel_for(0, static_cast<std::size_t>(cols_), [&](std::size_t c) {
    T acc = T(0);
    for (offset_t k = cp[c]; k < cp[c + 1]; ++k) {
      acc += v[k] * y[static_cast<std::size_t>(ri[k])];
    }
    xp[c] = acc;
  });
}

template <typename T>
std::size_t CscMatrix<T>::matrix_bytes() const {
  return values_.size() * sizeof(T) + row_idx_.size() * sizeof(index_t) +
         col_ptr_.size() * sizeof(offset_t);
}

template <typename T>
CooMatrix<T> CscMatrix<T>::to_coo() const {
  CooMatrix<T> coo(rows_, cols_);
  coo.reserve(nnz());
  for (index_t c = 0; c < cols_; ++c) {
    for (offset_t k = col_ptr_[static_cast<std::size_t>(c)];
         k < col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      coo.add(row_idx_[static_cast<std::size_t>(k)], c, values_[static_cast<std::size_t>(k)]);
    }
  }
  coo.normalize();
  return coo;
}

template class CscMatrix<float>;
template class CscMatrix<double>;

}  // namespace cscv::sparse
