// Compressed Sparse Row — the library's reference compute format.
//
// The serial and OpenMP row-parallel kernels here play the role of MKL-CSR
// in the paper's comparison: a well-implemented row-major CSR SpMV whose
// per-iteration memory traffic is values + column indices + row pointers +
// the indirectly-addressed x reads.
#pragma once

#include <span>

#include "sparse/coo.hpp"
#include "sparse/types.hpp"
#include "util/aligned_vector.hpp"

namespace cscv::sparse {

template <typename T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from a normalized COO (sorted row-major, no duplicates).
  static CsrMatrix from_coo(const CooMatrix<T>& coo);

  /// Builds directly from arrays (takes ownership); validates structure.
  CsrMatrix(index_t rows, index_t cols, util::AlignedVector<offset_t> row_ptr,
            util::AlignedVector<index_t> col_idx, util::AlignedVector<T> values);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return static_cast<offset_t>(values_.size()); }
  [[nodiscard]] Shape shape() const { return {rows_, cols_, nnz()}; }

  [[nodiscard]] std::span<const offset_t> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const index_t> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const T> values() const { return values_; }

  /// y = A x, serial.
  void spmv_serial(std::span<const T> x, std::span<T> y) const;

  /// y = A x, OpenMP static row partitioning (the MKL-CSR stand-in).
  void spmv(std::span<const T> x, std::span<T> y) const;

  /// Y = A X for num_rhs right-hand sides stored interleaved
  /// (X[col * K + k], Y[row * K + k]); row-parallel like spmv. Column k of
  /// the result is bitwise identical to spmv of that column alone: each
  /// column's row dot product visits the nonzeros in the same order.
  void spmv_multi(std::span<const T> x, std::span<T> y, int num_rhs) const;

  /// x = A^T y, serial (column-scatter form).
  void spmv_transpose_serial(std::span<const T> y, std::span<T> x) const;

  /// x = A^T y, parallel with per-thread x accumulators + reduction.
  void spmv_transpose(std::span<const T> y, std::span<T> x) const;

  /// Same, reusing caller-held accumulator scratch: grown on first use to
  /// threads * cols elements, then reused allocation-free. For warm loops
  /// (reconstruction operators) that back-project every iteration.
  void spmv_transpose(std::span<const T> y, std::span<T> x,
                      util::AlignedVector<T>& scratch) const;

  /// X = A^T Y for num_rhs interleaved right-hand sides. Mirrors the
  /// single-RHS structure (serial column-scatter at one thread, per-slot
  /// accumulators + flat reduction otherwise) so column k stays bitwise
  /// identical to spmv_transpose of that column at the same thread count.
  void spmv_transpose_multi(std::span<const T> y, std::span<T> x, int num_rhs,
                            util::AlignedVector<T>& scratch) const;

  /// Bytes of matrix data read per SpMV iteration: values + col indices +
  /// row pointers (the M(A) term of the paper's memory-requirement model).
  [[nodiscard]] std::size_t matrix_bytes() const;

  /// Converts back to COO (for round-trip tests and format conversions).
  [[nodiscard]] CooMatrix<T> to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  util::AlignedVector<offset_t> row_ptr_;   // rows_ + 1 entries
  util::AlignedVector<index_t> col_idx_;    // nnz entries
  util::AlignedVector<T> values_;           // nnz entries
};

extern template class CsrMatrix<float>;
extern template class CsrMatrix<double>;

}  // namespace cscv::sparse
