// CVR — Compressed Vectorization-oriented sparse Row (Xie et al., CGO'18),
// one of the paper's comparators.
//
// Idea: instead of vectorizing within a row (ELL) or within a tile (CSR5),
// give each SIMD lane its *own stream of rows*. The nonzeros are transposed
// into lane-major "steps": step s holds the current nonzero of each of the
// W lanes, so one vector FMA advances W independent rows at once. When a
// lane exhausts its row it records a write-back (step, lane, row) and
// steals the next unassigned row, keeping all lanes busy regardless of row
// length skew.
//
// Simplification vs. the original: threads are given whole-row chunks
// (balanced by nonzero count) rather than splitting single rows across
// threads; CT matrices have near-uniform rows (property P3), so the
// original's intra-row splitting machinery adds nothing here. Each row is
// processed entirely by one lane, so write-backs need no atomics.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"
#include "util/aligned_vector.hpp"

namespace cscv::sparse {

template <typename T>
class CvrMatrix {
 public:
  CvrMatrix() = default;

  /// Builds the lane-transposed layout from CSR. `lanes` is the SIMD width
  /// in elements (8 or 16 for single, 4 or 8 for double, any of {4,8,16}
  /// accepted); `chunks` is the number of thread partitions (defaults to
  /// the current OpenMP max).
  static CvrMatrix from_csr(const CsrMatrix<T>& a, int lanes = 8, int chunks = 0);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return nnz_; }
  [[nodiscard]] int lanes() const { return lanes_; }
  [[nodiscard]] int chunks() const { return static_cast<int>(chunk_step_ptr_.size()) - 1; }
  /// Stored elements including lane-padding (steps * lanes summed over
  /// chunks).
  [[nodiscard]] offset_t stored() const { return static_cast<offset_t>(values_.size()); }

  /// y = A x, one OpenMP thread per chunk.
  void spmv(std::span<const T> x, std::span<T> y) const;

  [[nodiscard]] std::size_t matrix_bytes() const;

 private:
  template <int W>
  void spmv_chunk(int chunk, const T* x, T* y) const;

  index_t rows_ = 0;
  index_t cols_ = 0;
  offset_t nnz_ = 0;
  int lanes_ = 0;

  // Per chunk: step range and write-back (rec) range.
  util::AlignedVector<offset_t> chunk_step_ptr_;  // chunks + 1, in steps
  util::AlignedVector<offset_t> chunk_rec_ptr_;   // chunks + 1, into recs
  // Lane-major streams: element (step s, lane l) at s * lanes + l.
  util::AlignedVector<index_t> col_idx_;
  util::AlignedVector<T> values_;
  // Write-backs, ascending by step within each chunk.
  util::AlignedVector<offset_t> rec_step_;
  util::AlignedVector<std::int32_t> rec_lane_;
  util::AlignedVector<index_t> rec_row_;
};

extern template class CvrMatrix<float>;
extern template class CvrMatrix<double>;

}  // namespace cscv::sparse
