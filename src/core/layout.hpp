// Mapping between matrix indices and the integral-operator structure.
//
// CSCV is not a general-purpose format: it assumes the matrix came from a
// line-integral imaging operator, i.e. rows are (view, bin) pairs and
// columns are image pixels. OperatorLayout carries exactly that mapping —
// nothing else about the acquisition — so CSCV can be built for any matrix
// with this row/column semantics (loaded from disk, different projector,
// different geometry), matching the paper's claim that IOBLR only relies on
// properties P1-P3 of the operator.
#pragma once

#include "ct/geometry.hpp"
#include "sparse/types.hpp"
#include "util/assertx.hpp"
#include "util/prefix_sum.hpp"

namespace cscv::core {

struct OperatorLayout {
  int image_size = 0;  // columns form an image_size x image_size pixel grid
  int num_bins = 0;    // rows are view-major: row = view * num_bins + bin
  int num_views = 0;

  [[nodiscard]] static OperatorLayout from_geometry(const ct::ParallelGeometry& g) {
    return {g.image_size, g.num_bins, g.num_views};
  }

  [[nodiscard]] sparse::index_t num_rows() const {
    return static_cast<sparse::index_t>(num_views) * num_bins;
  }
  [[nodiscard]] sparse::index_t num_cols() const {
    return static_cast<sparse::index_t>(image_size) * image_size;
  }

  [[nodiscard]] int view_of_row(sparse::index_t row) const { return row / num_bins; }
  [[nodiscard]] int bin_of_row(sparse::index_t row) const { return row % num_bins; }
  [[nodiscard]] int px_of_col(sparse::index_t col) const { return col % image_size; }
  [[nodiscard]] int py_of_col(sparse::index_t col) const { return col / image_size; }
  [[nodiscard]] sparse::index_t col_of_pixel(int ix, int iy) const {
    return static_cast<sparse::index_t>(iy) * image_size + ix;
  }
  [[nodiscard]] sparse::index_t row_of(int view, int bin) const {
    return static_cast<sparse::index_t>(view) * num_bins + bin;
  }

  void validate() const { CSCV_CHECK(image_size > 0 && num_bins > 0 && num_views > 0); }
};

/// Block grid derived from (layout, S_VVec, S_ImgB): view groups x image
/// tiles. Blocks are numbered view-group-major, then tile-row, then
/// tile-column, so all blocks of one view group are contiguous — the
/// property the row-partitioned thread scheduler relies on.
struct BlockGrid {
  int s_vvec = 0;
  int s_imgb = 0;
  int view_groups = 0;  // ceil(num_views / s_vvec)
  int tiles_x = 0;      // ceil(image_size / s_imgb)
  int tiles_y = 0;

  BlockGrid() = default;
  BlockGrid(const OperatorLayout& layout, int s_vvec_, int s_imgb_)
      : s_vvec(s_vvec_),
        s_imgb(s_imgb_),
        view_groups(util::ceil_div(layout.num_views, s_vvec_)),
        tiles_x(util::ceil_div(layout.image_size, s_imgb_)),
        tiles_y(util::ceil_div(layout.image_size, s_imgb_)) {}

  [[nodiscard]] int num_blocks() const { return view_groups * tiles_y * tiles_x; }
  [[nodiscard]] int block_id(int g, int ty, int tx) const {
    return (g * tiles_y + ty) * tiles_x + tx;
  }
  [[nodiscard]] int group_of(int block) const { return block / (tiles_y * tiles_x); }
  [[nodiscard]] int tile_y_of(int block) const { return (block / tiles_x) % tiles_y; }
  [[nodiscard]] int tile_x_of(int block) const { return block % tiles_x; }
  [[nodiscard]] int first_view(int g) const { return g * s_vvec; }
};

}  // namespace cscv::core
