// SpmvPlan construction and the warm apply paths (see plan.hpp).
#include "core/plan.hpp"

#include <algorithm>
#include <type_traits>

#include "util/assertx.hpp"
#include "util/parallel.hpp"

namespace cscv::core {

using sparse::index_t;
using sparse::offset_t;

template <typename T>
SpmvPlan<T>::SpmvPlan(const CscvMatrix<T>& a, const PlanOptions& opts)
    : a_(&a), requested_(opts) {
  const util::telemetry::Stopwatch build_timer;
  CSCV_CHECK(opts.num_rhs >= 1);
  num_rhs_ = opts.num_rhs;
  threads_ = opts.threads > 0 ? opts.threads : util::max_threads();
  CSCV_CHECK(threads_ >= 1);

  // Resolve once what the one-shot paths used to resolve per call.
  scheme_ = opts.scheme;
  if (scheme_ == ThreadScheme::kAuto) {
    scheme_ = a.grid_.view_groups >= threads_ ? ThreadScheme::kRowPartition
                                              : ThreadScheme::kPrivateY;
  }
  if (threads_ == 1) scheme_ = ThreadScheme::kRowPartition;  // trivially race-free
  value_type_ = opts.value_type == ValueType::kAuto ? a.value_type() : opts.value_type;
  CSCV_CHECK_MSG(value_type_ == a.value_type(),
                 "PlanOptions::value_type " << value_type_name(value_type_)
                                            << " does not match the matrix's stored "
                                            << value_type_name(a.value_type())
                                            << " (convert_values first)");
  tier_ = dispatch::select_tier_for_dtype(opts.isa, value_type_);
  use_hw_ = a.variant_ == CscvMatrix<T>::Variant::kM &&
            dispatch::resolve_expand_path(opts.path, std::is_same_v<T, double>,
                                          a.params_.s_vvec, tier_.tier);
  kernels_ = dispatch::resolve_kernels<T>(a.variant_, a.params_.s_vvec, a.params_.s_vxg,
                                          use_hw_, num_rhs_, tier_.tier, value_type_);

  // Weighted partitions: a block's work is its VxG count, so prefix-sum
  // splits balance actual FMA work, not block counts (corner tiles of a CT
  // matrix carry far fewer VxGs than central ones).
  const int tiles_per_group = a.grid_.tiles_x * a.grid_.tiles_y;
  const std::size_t num_groups = static_cast<std::size_t>(a.grid_.view_groups);
  const std::size_t num_blocks = a.blocks_.size();
  std::vector<std::uint64_t> group_w(num_groups, 0);
  std::vector<std::uint64_t> block_w(num_blocks, 0);
  std::vector<std::uint64_t> tile_w(static_cast<std::size_t>(tiles_per_group), 0);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const auto& info = a.blocks_[b];
    const auto w = static_cast<std::uint64_t>(info.vxg_end - info.vxg_begin);
    block_w[b] = w;
    group_w[static_cast<std::size_t>(info.view_group)] += w;
    tile_w[b % static_cast<std::size_t>(tiles_per_group)] += w;
  }
  group_bounds_ = util::weighted_boundaries(group_w, threads_);
  block_bounds_ = util::weighted_boundaries(block_w, threads_);
  tile_bounds_ = util::weighted_boundaries(tile_w, threads_);

  work_.assign(static_cast<std::size_t>(threads_), 0);
  for (int t = 0; t < threads_; ++t) {
    const auto& bounds = scheme_ == ThreadScheme::kRowPartition ? group_bounds_ : block_bounds_;
    const auto& weights = scheme_ == ThreadScheme::kRowPartition ? group_w : block_w;
    for (std::size_t i = bounds[static_cast<std::size_t>(t)];
         i < bounds[static_cast<std::size_t>(t) + 1]; ++i) {
      work_[static_cast<std::size_t>(t)] += weights[i];
    }
  }

  // Per-thread y~ scratch, one cache-line-aligned stripe per slot.
  const std::size_t slots =
      std::max<std::size_t>(a.ytilde_max_slots_, 1) * static_cast<std::size_t>(num_rhs_);
  const std::size_t align_elems = 64 / sizeof(T);
  ytilde_stride_ = (slots + align_elems - 1) / align_elems * align_elems;
  ytilde_pool_.resize(static_cast<std::size_t>(threads_) * ytilde_stride_);

  if (scheme_ == ThreadScheme::kPrivateY) {
    // Private-copy pool plus, per slot, the contiguous y interval its
    // contiguous block range can touch: blocks are view-group-major and a
    // group's rows are contiguous (row = view * num_bins + bin), so slot t
    // only ever writes rows of view groups [group(first block), group(last
    // block)]. Re-zeroing and reducing just these intervals is what keeps
    // the warm path free of the full threads x m fill.
    const std::size_t m_total =
        static_cast<std::size_t>(a.rows()) * static_cast<std::size_t>(num_rhs_);
    const std::size_t row_elems =
        static_cast<std::size_t>(a.layout_.num_bins) * static_cast<std::size_t>(num_rhs_);
    row_interval_.assign(static_cast<std::size_t>(threads_), {0, 0});
    for (int t = 0; t < threads_; ++t) {
      const std::size_t b0 = block_bounds_[static_cast<std::size_t>(t)];
      const std::size_t b1 = block_bounds_[static_cast<std::size_t>(t) + 1];
      if (b0 == b1) continue;
      const int g_lo = a.blocks_[b0].view_group;
      const int g_hi = a.blocks_[b1 - 1].view_group;
      const auto v_lo = static_cast<std::size_t>(a.grid_.first_view(g_lo));
      const auto v_hi = std::min<std::size_t>(
          static_cast<std::size_t>(a.layout_.num_views),
          static_cast<std::size_t>(a.grid_.first_view(g_hi)) +
              static_cast<std::size_t>(a.grid_.s_vvec));
      row_interval_[static_cast<std::size_t>(t)] = {v_lo * row_elems, v_hi * row_elems};
    }
    copies_.resize(static_cast<std::size_t>(threads_) * m_total);
  }
  counters_.record_plan_build(build_timer.seconds());
}

template <typename T>
void SpmvPlan<T>::run_forward(int block, const T* x, T* ytilde) const {
  const auto& info = a_->blocks_[static_cast<std::size_t>(block)];
  const void* values = a_->value_ptr(info.val_begin);
  if (num_rhs_ == 1) {
    kernels_.forward(info.vxg_begin, info.vxg_end, a_->vxg_col_.data(), a_->vxg_q_.data(),
                     values, a_->masks_.data(), x, ytilde);
  } else {
    kernels_.multi(info.vxg_begin, info.vxg_end, a_->vxg_col_.data(), a_->vxg_q_.data(),
                   values, a_->masks_.data(), x, num_rhs_, ytilde);
  }
}

template <typename T>
void SpmvPlan<T>::scatter_add(int block, const T* ytilde, T* dst) const {
  const auto& info = a_->blocks_[static_cast<std::size_t>(block)];
  const int s = a_->params_.s_vvec;
  const int v0 = a_->grid_.first_view(info.view_group);
  const int s_eff = std::min(s, a_->layout_.num_views - v0);
  const int k = num_rhs_;
  for (int vi = 0; vi < s_eff; ++vi) {
    const int ref = a_->refs_[static_cast<std::size_t>(block) * s + vi];
    // Valid offset indices keep the bin ref + o_min + o_idx on the detector.
    const int lo = std::max(0, -(ref + info.o_min));
    const int hi = std::min(info.o_count, a_->layout_.num_bins - ref - info.o_min);
    const int bin0 = ref + info.o_min;
    T* yrow = dst + static_cast<std::size_t>(a_->layout_.row_of(v0 + vi, 0)) * k;
    if (k == 1) {
      for (int o = lo; o < hi; ++o) {
        yrow[bin0 + o] += ytilde[static_cast<std::size_t>(o) * s + vi];
      }
    } else {
      for (int o = lo; o < hi; ++o) {
        const T* src = ytilde + (static_cast<std::size_t>(o) * s + vi) * k;
        T* d = yrow + static_cast<std::size_t>(bin0 + o) * k;
        for (int r = 0; r < k; ++r) d[r] += src[r];
      }
    }
  }
}

template <typename T>
void SpmvPlan<T>::gather(int block, const T* src, T* ytilde) const {
  const auto& info = a_->blocks_[static_cast<std::size_t>(block)];
  const int s = a_->params_.s_vvec;
  const int v0 = a_->grid_.first_view(info.view_group);
  const int s_eff = std::min(s, a_->layout_.num_views - v0);
  const int k = num_rhs_;
  std::fill_n(ytilde, static_cast<std::size_t>(info.o_count) * s * k, T(0));
  for (int vi = 0; vi < s_eff; ++vi) {
    const int ref = a_->refs_[static_cast<std::size_t>(block) * s + vi];
    const int lo = std::max(0, -(ref + info.o_min));
    const int hi = std::min(info.o_count, a_->layout_.num_bins - ref - info.o_min);
    const T* yrow = src + static_cast<std::size_t>(a_->layout_.row_of(v0 + vi, 0)) * k;
    const int bin0 = ref + info.o_min;
    if (k == 1) {
      for (int o = lo; o < hi; ++o) {
        ytilde[static_cast<std::size_t>(o) * s + vi] = yrow[bin0 + o];
      }
    } else {
      for (int o = lo; o < hi; ++o) {
        const T* srow = yrow + static_cast<std::size_t>(bin0 + o) * k;
        T* drow = ytilde + (static_cast<std::size_t>(o) * s + vi) * k;
        for (int r = 0; r < k; ++r) drow[r] = srow[r];
      }
    }
  }
}

template <typename T>
void SpmvPlan<T>::execute(std::span<const T> x, std::span<T> y) const {
  CSCV_CHECK(x.size() ==
             static_cast<std::size_t>(a_->cols()) * static_cast<std::size_t>(num_rhs_));
  CSCV_CHECK(y.size() ==
             static_cast<std::size_t>(a_->rows()) * static_cast<std::size_t>(num_rhs_));
  const util::telemetry::Stopwatch apply_timer;
  const int tiles_per_group = a_->grid_.tiles_x * a_->grid_.tiles_y;
  const int s = a_->params_.s_vvec;
  const int k = num_rhs_;

  if (scheme_ == ThreadScheme::kRowPartition) {
    // Slots own whole view groups: their blocks write disjoint y rows, so
    // scatter goes straight into the shared output. Slots are striped over
    // however many threads the runtime actually provides, so a plan built
    // at N threads stays correct at any other count.
    util::parallel_for(0, y.size(), [&](std::size_t i) { y[i] = T(0); });
    util::parallel_region([&](int tid, int nthreads) {
      for (int slot = tid; slot < threads_; slot += nthreads) {
        T* ytilde = ytilde_slot(slot);
        for (std::size_t g = group_bounds_[static_cast<std::size_t>(slot)];
             g < group_bounds_[static_cast<std::size_t>(slot) + 1]; ++g) {
          for (int tb = 0; tb < tiles_per_group; ++tb) {
            const int b = static_cast<int>(g) * tiles_per_group + tb;
            const auto& info = a_->blocks_[static_cast<std::size_t>(b)];
            if (info.vxg_begin == info.vxg_end) continue;
            std::fill_n(ytilde, static_cast<std::size_t>(info.o_count) * s * k, T(0));
            run_forward(b, x.data(), ytilde);
            scatter_add(b, ytilde, y.data());
          }
        }
      }
    });
    counters_.record_apply(apply_timer.seconds());
    return;
  }

  // Private-copy scheme (the paper's description): slots split the block
  // list; each accumulates into its own y copy; copies are reduced in a
  // second parallel pass. Only each slot's touchable row interval is
  // zeroed and reduced.
  const std::size_t m_total = y.size();
  util::parallel_region([&](int tid, int nthreads) {
    for (int slot = tid; slot < threads_; slot += nthreads) {
      const auto [r_lo, r_hi] = row_interval_[static_cast<std::size_t>(slot)];
      T* yc = copies_.data() + static_cast<std::size_t>(slot) * m_total;
      std::fill(yc + r_lo, yc + r_hi, T(0));
      T* ytilde = ytilde_slot(slot);
      for (std::size_t b = block_bounds_[static_cast<std::size_t>(slot)];
           b < block_bounds_[static_cast<std::size_t>(slot) + 1]; ++b) {
        const auto& info = a_->blocks_[b];
        if (info.vxg_begin == info.vxg_end) continue;
        std::fill_n(ytilde, static_cast<std::size_t>(info.o_count) * s * k, T(0));
        run_forward(static_cast<int>(b), x.data(), ytilde);
        scatter_add(static_cast<int>(b), ytilde, yc);
      }
    }
  });
  util::parallel_region([&](int tid, int nthreads) {
    auto [r0, r1] = util::static_partition(m_total, nthreads, tid);
    std::fill(y.begin() + static_cast<std::ptrdiff_t>(r0),
              y.begin() + static_cast<std::ptrdiff_t>(r1), T(0));
    for (int slot = 0; slot < threads_; ++slot) {
      const auto [i_lo, i_hi] = row_interval_[static_cast<std::size_t>(slot)];
      const std::size_t lo = std::max(r0, i_lo);
      const std::size_t hi = std::min(r1, i_hi);
      const T* yc = copies_.data() + static_cast<std::size_t>(slot) * m_total;
      for (std::size_t r = lo; r < hi; ++r) y[r] += yc[r];
    }
  });
  counters_.record_apply(apply_timer.seconds());
}

template <typename T>
void SpmvPlan<T>::execute_transpose(std::span<const T> y, std::span<T> x) const {
  CSCV_CHECK(y.size() ==
             static_cast<std::size_t>(a_->rows()) * static_cast<std::size_t>(num_rhs_));
  CSCV_CHECK(x.size() ==
             static_cast<std::size_t>(a_->cols()) * static_cast<std::size_t>(num_rhs_));
  const util::telemetry::Stopwatch apply_timer;
  const int tiles_per_group = a_->grid_.tiles_x * a_->grid_.tiles_y;

  // Slots own image tiles: the same tile across all view groups touches a
  // private x slice, so writes need no synchronization. y is read-only.
  util::parallel_for(0, x.size(), [&](std::size_t i) { x[i] = T(0); });
  util::parallel_region([&](int tid, int nthreads) {
    for (int slot = tid; slot < threads_; slot += nthreads) {
      T* ytilde = ytilde_slot(slot);
      for (std::size_t tile = tile_bounds_[static_cast<std::size_t>(slot)];
           tile < tile_bounds_[static_cast<std::size_t>(slot) + 1]; ++tile) {
        for (int g = 0; g < a_->grid_.view_groups; ++g) {
          const int b = g * tiles_per_group + static_cast<int>(tile);
          const auto& info = a_->blocks_[static_cast<std::size_t>(b)];
          if (info.vxg_begin == info.vxg_end) continue;
          gather(b, y.data(), ytilde);
          if (num_rhs_ == 1) {
            kernels_.transpose(info.vxg_begin, info.vxg_end, a_->vxg_col_.data(),
                               a_->vxg_q_.data(), a_->value_ptr(info.val_begin),
                               a_->masks_.data(), ytilde, x.data());
          } else {
            kernels_.transpose_multi(info.vxg_begin, info.vxg_end, a_->vxg_col_.data(),
                                     a_->vxg_q_.data(), a_->value_ptr(info.val_begin),
                                     a_->masks_.data(), ytilde, num_rhs_, x.data());
          }
        }
      }
    }
  });
  counters_.record_transpose(apply_timer.seconds());
}

template <typename T>
PlanStats SpmvPlan<T>::stats() const {
  PlanStats s;
  const CscvMatrix<T>& a = *a_;

  // Structural half — the format statistics the fig4/fig5 benches report,
  // restated per plan so a telemetry record is self-describing.
  s.nnz = static_cast<std::uint64_t>(a.nnz());
  s.padded_values = static_cast<std::uint64_t>(a.padded_values());
  s.stored_values = static_cast<std::uint64_t>(a.stored_values());
  s.vxg_occupancy = s.padded_values == 0
                        ? 0.0
                        : static_cast<double>(s.nnz) / static_cast<double>(s.padded_values);
  s.padding_fraction = s.padded_values == 0 ? 0.0 : 1.0 - s.vxg_occupancy;
  s.r_nnze = a.r_nnze();
  s.num_vxgs = static_cast<std::uint64_t>(a.num_vxgs());
  s.num_blocks = static_cast<std::uint64_t>(a.num_blocks());
  for (const auto& info : a.blocks_) {
    if (info.vxg_begin != info.vxg_end) ++s.nonempty_blocks;
  }
  const auto k = static_cast<std::uint64_t>(num_rhs_);
  s.flops_per_apply = 2 * s.nnz * k;
  s.padded_flops_per_apply = 2 * s.padded_values * k;
  s.matrix_bytes = static_cast<std::uint64_t>(a.matrix_bytes());
  s.vector_bytes_per_apply =
      (static_cast<std::uint64_t>(a.cols()) + static_cast<std::uint64_t>(a.rows())) * k *
      sizeof(T);
  s.scratch_bytes = static_cast<std::uint64_t>(scratch_bytes());
  s.threads = threads_;
  s.num_rhs = num_rhs_;
  s.scheme = scheme_;
  s.hardware_expand = use_hw_;
  s.isa_tier = tier_.tier;
  s.isa_forced = tier_.forced;
  s.isa_clamped = tier_.clamped;
  s.value_type = value_type_;
  s.bytes_per_value = static_cast<std::uint64_t>(a.value_bytes());
  std::uint64_t total_work = 0, max_work = 0;
  for (std::uint64_t w : work_) {
    total_work += w;
    max_work = std::max(max_work, w);
  }
  s.load_imbalance =
      total_work == 0 ? 0.0
                      : static_cast<double>(max_work) * static_cast<double>(threads_) /
                            static_cast<double>(total_work);

  // Dynamic half — reads compile-time zeros when telemetry is off.
  s.telemetry_enabled = util::telemetry::kEnabled;
  s.applies = counters_.applies;
  s.transpose_applies = counters_.transpose_applies;
  s.plan_build_seconds = counters_.plan_build_seconds;
  s.apply_seconds_total = counters_.apply_seconds_total;
  s.apply_seconds_min = counters_.apply_seconds_min;
  s.transpose_seconds_total = counters_.transpose_seconds_total;
  if (counters_.apply_seconds_min > 0.0) {
    s.gflops_best = static_cast<double>(s.flops_per_apply) / counters_.apply_seconds_min / 1e9;
    s.gbytes_per_second_best =
        static_cast<double>(s.matrix_bytes + s.vector_bytes_per_apply) /
        counters_.apply_seconds_min / 1e9;
  }
  if (counters_.apply_seconds_total > 0.0 && counters_.applies > 0) {
    s.gflops_avg = static_cast<double>(s.flops_per_apply) *
                   static_cast<double>(counters_.applies) / counters_.apply_seconds_total /
                   1e9;
  }
  return s;
}

// ---- cached-plan accessor on the matrix ---------------------------------

template <typename T>
const SpmvPlan<T>& CscvMatrix<T>::plan(const PlanOptions& opts) const {
  const int want_threads = opts.threads > 0 ? opts.threads : util::max_threads();
  // The build happens under the lock on purpose: concurrent cold callers
  // single-flight onto one construction instead of each building (and all
  // but one discarding) a plan. The warm path is one uncontended lock plus
  // a scan of a handful of slots, keyed on the full (options, thread count)
  // configuration — so distinct num_rhs values (a service batching jobs at
  // several widths) coexist instead of thrashing one slot.
  util::MutexLock lock(plan_cache_.mu);
  auto& slots = plan_cache_.slots;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i]->matches(*this, opts, want_threads)) {
      if (i != 0) std::rotate(slots.begin(), slots.begin() + static_cast<std::ptrdiff_t>(i),
                              slots.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      return *slots.front();
    }
  }
  slots.insert(slots.begin(), std::make_shared<SpmvPlan<T>>(*this, opts));
  if (slots.size() > kPlanCacheSlots) slots.pop_back();
  return *slots.front();
}

template class SpmvPlan<float>;
template class SpmvPlan<double>;
template const SpmvPlan<float>& CscvMatrix<float>::plan(const PlanOptions&) const;
template const SpmvPlan<double>& CscvMatrix<double>::plan(const PlanOptions&) const;

}  // namespace cscv::core
