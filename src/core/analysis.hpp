// Layout analyses behind the paper's didactic figures.
//
//  * Fig. 4 — "SIMD efficiency" of a y layout: how many of the S_VVec slots
//    a vector register covers are actual nonzeros of one column, under
//    bin-major, view-major, and IOBLR-major orderings of y.
//  * Fig. 5 — quality of each candidate reference pixel of a block: number
//    of CSCVEs, padding zeros, and the bin-offset span its trajectory
//    induces.
//
// These run on a single matrix block (the paper uses the Table I example)
// and are exposed separately from the CSCV builder so the benches can sweep
// reference pixels without constructing full matrices.
#pragma once

#include <vector>

#include "core/layout.hpp"
#include "sparse/csc.hpp"

namespace cscv::core {

/// One matrix block: view group [v0, v0 + s_vvec) x pixel rectangle
/// [px0, px1) x [py0, py1).
struct BlockSpec {
  int v0 = 0;
  int s_vvec = 8;
  int px0 = 0, px1 = 0;
  int py0 = 0, py1 = 0;
};

enum class YLayout {
  kBinMajor,   // vector = s_vvec consecutive bins of one view (CT default)
  kViewMajor,  // vector = one bin across s_vvec consecutive views (BTB)
  kIoblr,      // vector = one bin offset across the view group (CSCV)
};

/// Distribution of nonzeros covered per S_VVec-wide vector, over all
/// vectors any column of the block needs to touch.
struct SimdEfficiency {
  int min = 0;
  int max = 0;
  double mean = 0.0;
  long vectors = 0;  // how many vector operations the block costs
};

template <typename T>
SimdEfficiency simd_efficiency(const sparse::CscMatrix<T>& a, const OperatorLayout& layout,
                               const BlockSpec& spec, YLayout y_layout);

/// Fig. 5 statistics for one candidate reference pixel.
struct RefPixelStats {
  int ref_px = 0;
  int ref_py = 0;
  long cscve_count = 0;   // CSCVEs the block needs with this reference
  long padding_zeros = 0; // cscve_count * s_vvec - block nnz
  int offset_min = 0;     // span of parallel-curve offsets
  int offset_max = 0;
};

template <typename T>
RefPixelStats reference_pixel_stats(const sparse::CscMatrix<T>& a,
                                    const OperatorLayout& layout, const BlockSpec& spec,
                                    int ref_px, int ref_py);

/// Convenience: stats for every pixel of the block as reference (the full
/// Fig. 5 heat map).
template <typename T>
std::vector<RefPixelStats> all_reference_pixel_stats(const sparse::CscMatrix<T>& a,
                                                     const OperatorLayout& layout,
                                                     const BlockSpec& spec);

extern template SimdEfficiency simd_efficiency<float>(const sparse::CscMatrix<float>&,
                                                      const OperatorLayout&, const BlockSpec&,
                                                      YLayout);
extern template SimdEfficiency simd_efficiency<double>(const sparse::CscMatrix<double>&,
                                                       const OperatorLayout&,
                                                       const BlockSpec&, YLayout);
extern template RefPixelStats reference_pixel_stats<float>(const sparse::CscMatrix<float>&,
                                                           const OperatorLayout&,
                                                           const BlockSpec&, int, int);
extern template RefPixelStats reference_pixel_stats<double>(const sparse::CscMatrix<double>&,
                                                            const OperatorLayout&,
                                                            const BlockSpec&, int, int);
extern template std::vector<RefPixelStats> all_reference_pixel_stats<float>(
    const sparse::CscMatrix<float>&, const OperatorLayout&, const BlockSpec&);
extern template std::vector<RefPixelStats> all_reference_pixel_stats<double>(
    const sparse::CscMatrix<double>&, const OperatorLayout&, const BlockSpec&);

}  // namespace cscv::core
