// Unified kernel dispatch for the CSCV runtime.
//
// The S_VVec / S_VxG / num_rhs template parameters of the block kernels
// (kernels.hpp) are runtime values on the matrix, so every apply path needs
// a switch ladder from runtime ints to compile-time tags. This header owns
// that ladder — once — and resolves it into plain function pointers with a
// uniform signature (Z kernels ignore the mask pointer), so SpmvPlan can
// pay for the dispatch at plan-build time and the hot loop is an indirect
// call with zero branching.
#pragma once

#include <cstdint>

#include "core/format.hpp"
#include "core/kernels.hpp"
#include "simd/expand.hpp"
#include "simd/isa.hpp"
#include "sparse/types.hpp"
#include "util/assertx.hpp"

namespace cscv::core::dispatch {

/// y~ += block * x — one matrix block against its local output (single RHS).
template <typename T>
using ForwardFn = void (*)(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                           const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                           const T* values, const std::uint16_t* masks, const T* x, T* yt);

/// Y~ += block * X for num_rhs interleaved right-hand sides.
template <typename T>
using MultiFn = void (*)(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                         const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                         const T* values, const std::uint16_t* masks, const T* x,
                         int num_rhs, T* yt);

/// x += block^T * y~ — the transpose contraction.
template <typename T>
using TransposeFn = void (*)(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                             const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                             const T* values, const std::uint16_t* masks, const T* yt,
                             T* x);

/// The three directions of one (variant, S, V, expand path, num_rhs) choice.
template <typename T>
struct KernelSet {
  ForwardFn<T> forward = nullptr;
  MultiFn<T> multi = nullptr;
  TransposeFn<T> transpose = nullptr;
};

/// Resolves kAuto against CPU + binary capabilities for element type T and
/// CSCVE width S (CSCV-M only uses hardware expansion when it exists).
template <typename T>
inline bool resolve_expand_path(simd::ExpandPath path, int s_vvec) {
  switch (path) {
    case simd::ExpandPath::kHardware: return true;
    case simd::ExpandPath::kSoftware: return false;
    case simd::ExpandPath::kAuto: break;
  }
  if (!(simd::cpu_isa().avx512f && simd::kCompiledAvx512f)) return false;
  // Narrow widths need AVX-512VL; chunked double-16 needs only F.
  switch (s_vvec) {
    case 16: return true;
    case 8:
      return sizeof(T) == 8 || (simd::cpu_isa().avx512vl && simd::kCompiledAvx512vl);
    case 4: return simd::cpu_isa().avx512vl && simd::kCompiledAvx512vl;
    default: return false;
  }
}

namespace detail {

// Uniform-signature wrappers. kHw degrades to the software path at compile
// time when the binary lacks the chunked hardware expand for (T, S), so a
// forced ExpandPath::kHardware is always safe to resolve.
template <typename T, int S, int V>
void forward_z(sparse::offset_t b, sparse::offset_t e, const sparse::index_t* col,
               const std::int32_t* q, const T* values, const std::uint16_t* /*masks*/,
               const T* x, T* yt) {
  kernels::run_block_z<T, S, V>(b, e, col, q, values, x, yt);
}

template <typename T, int S, int V, bool Hw>
void forward_m(sparse::offset_t b, sparse::offset_t e, const sparse::index_t* col,
               const std::int32_t* q, const T* values, const std::uint16_t* masks,
               const T* x, T* yt) {
  constexpr bool kHw = Hw && simd::has_chunked_hardware_expand<T, S>();
  kernels::run_block_m<T, S, V, kHw>(b, e, col, q, values, masks, x, yt);
}

template <typename T, int S, int V, int K>
void multi_z(sparse::offset_t b, sparse::offset_t e, const sparse::index_t* col,
             const std::int32_t* q, const T* values, const std::uint16_t* /*masks*/,
             const T* x, int num_rhs, T* yt) {
  kernels::run_block_z_multi<T, S, V, K>(b, e, col, q, values, x, num_rhs, yt);
}

template <typename T, int S, int V, int K, bool Hw>
void multi_m(sparse::offset_t b, sparse::offset_t e, const sparse::index_t* col,
             const std::int32_t* q, const T* values, const std::uint16_t* masks, const T* x,
             int num_rhs, T* yt) {
  constexpr bool kHw = Hw && simd::has_chunked_hardware_expand<T, S>();
  kernels::run_block_m_multi<T, S, V, K, kHw>(b, e, col, q, values, masks, x, num_rhs, yt);
}

template <typename T, int S, int V>
void transpose_z(sparse::offset_t b, sparse::offset_t e, const sparse::index_t* col,
                 const std::int32_t* q, const T* values, const std::uint16_t* /*masks*/,
                 const T* yt, T* x) {
  kernels::run_block_z_transpose<T, S, V>(b, e, col, q, values, yt, x);
}

template <typename T, int S, int V, bool Hw>
void transpose_m(sparse::offset_t b, sparse::offset_t e, const sparse::index_t* col,
                 const std::int32_t* q, const T* values, const std::uint16_t* masks,
                 const T* yt, T* x) {
  constexpr bool kHw = Hw && simd::has_chunked_hardware_expand<T, S>();
  kernels::run_block_m_transpose<T, S, V, kHw>(b, e, col, q, values, masks, yt, x);
}

template <typename T, typename Variant, int S, int V, int K, bool Hw>
KernelSet<T> make_set(Variant variant) {
  KernelSet<T> set;
  if (variant == Variant::kZ) {
    set.forward = &forward_z<T, S, V>;
    set.multi = &multi_z<T, S, V, K>;
    set.transpose = &transpose_z<T, S, V>;
  } else {
    set.forward = &forward_m<T, S, V, Hw>;
    set.multi = &multi_m<T, S, V, K, Hw>;
    set.transpose = &transpose_m<T, S, V, Hw>;
  }
  return set;
}

}  // namespace detail

/// Resolves (variant, S_VVec, S_VxG, expand path, num_rhs) to concrete
/// kernels. `use_hw` must already be resolved via resolve_expand_path.
/// num_rhs values without a compile-time specialization fall back to the
/// generic runtime-K kernel (K = 0).
template <typename T>
KernelSet<T> resolve_kernels(typename CscvMatrix<T>::Variant variant, int s_vvec, int s_vxg,
                             bool use_hw, int num_rhs) {
  using Variant = typename CscvMatrix<T>::Variant;
  const auto with_svk = [&](auto s_tag, auto v_tag, auto k_tag) {
    constexpr int S = decltype(s_tag)::value;
    constexpr int V = decltype(v_tag)::value;
    constexpr int K = decltype(k_tag)::value;
    return use_hw ? detail::make_set<T, Variant, S, V, K, true>(variant)
                  : detail::make_set<T, Variant, S, V, K, false>(variant);
  };
  using std::integral_constant;
  const auto with_sv = [&](auto s_tag, auto v_tag) {
    switch (num_rhs) {
      case 1: return with_svk(s_tag, v_tag, integral_constant<int, 1>{});
      case 2: return with_svk(s_tag, v_tag, integral_constant<int, 2>{});
      case 4: return with_svk(s_tag, v_tag, integral_constant<int, 4>{});
      case 8: return with_svk(s_tag, v_tag, integral_constant<int, 8>{});
      case 16: return with_svk(s_tag, v_tag, integral_constant<int, 16>{});
      default: return with_svk(s_tag, v_tag, integral_constant<int, 0>{});
    }
  };
  const auto with_s = [&](auto s_tag) {
    switch (s_vxg) {
      case 1: return with_sv(s_tag, integral_constant<int, 1>{});
      case 2: return with_sv(s_tag, integral_constant<int, 2>{});
      case 4: return with_sv(s_tag, integral_constant<int, 4>{});
      case 8: return with_sv(s_tag, integral_constant<int, 8>{});
      case 16: return with_sv(s_tag, integral_constant<int, 16>{});
      default: CSCV_CHECK_MSG(false, "bad S_VxG " << s_vxg);
    }
  };
  switch (s_vvec) {
    case 4: return with_s(integral_constant<int, 4>{});
    case 8: return with_s(integral_constant<int, 8>{});
    case 16: return with_s(integral_constant<int, 16>{});
    default: CSCV_CHECK_MSG(false, "bad S_VVec " << s_vvec);
  }
}

}  // namespace cscv::core::dispatch
