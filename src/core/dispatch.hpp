// Unified kernel dispatch for the CSCV runtime — two levels.
//
// Level one picks an ISA *tier*: the hot kernels (kernels_body.inc +
// expand_body.inc) are compiled once per tier with that tier's arch flags
// (core/kernels_isa.cpp, built by CSCV_MULTIVERSION), and each compiled tier
// registers a TierOps entry here. At run time the highest registered tier
// the CPU supports wins, overridable via the CSCV_FORCE_ISA env var or
// PlanOptions::isa (docs/DISPATCH.md).
//
// Level two is the original ladder: the S_VVec / S_VxG / num_rhs template
// parameters of the block kernels are runtime values on the matrix, so the
// selected tier maps (variant, S, V, expand path, num_rhs) to plain function
// pointers with a uniform signature (Z kernels ignore the mask pointer).
// SpmvPlan pays for both levels at plan-build time; the hot loop is an
// indirect call with zero branching.
#pragma once

#include <cstdint>

#include "core/format.hpp"
#include "simd/expand.hpp"
#include "simd/isa.hpp"
#include "sparse/types.hpp"
#include "util/assertx.hpp"

namespace cscv::core::dispatch {

// The value stream is byte-typed (const void*): a kernel set is resolved
// for one concrete ValueType and its wrappers cast to the dtype they were
// instantiated for — fp32 sets read T, reduced sets read std::uint16_t bits
// and widen on load (docs/PRECISION.md).

/// y~ += block * x — one matrix block against its local output (single RHS).
template <typename T>
using ForwardFn = void (*)(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                           const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                           const void* values, const std::uint16_t* masks, const T* x,
                           T* yt);

/// Y~ += block * X for num_rhs interleaved right-hand sides.
template <typename T>
using MultiFn = void (*)(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                         const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                         const void* values, const std::uint16_t* masks, const T* x,
                         int num_rhs, T* yt);

/// x += block^T * y~ — the transpose contraction.
template <typename T>
using TransposeFn = void (*)(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                             const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                             const void* values, const std::uint16_t* masks, const T* yt,
                             T* x);

/// x += block^T * y~ for num_rhs interleaved right-hand sides.
template <typename T>
using TransposeMultiFn = void (*)(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                                  const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                                  const void* values, const std::uint16_t* masks,
                                  const T* yt, int num_rhs, T* x);

/// The four directions of one (variant, S, V, expand path, num_rhs) choice.
template <typename T>
struct KernelSet {
  ForwardFn<T> forward = nullptr;
  MultiFn<T> multi = nullptr;
  TransposeFn<T> transpose = nullptr;
  TransposeMultiFn<T> transpose_multi = nullptr;
};

/// Entry points of one compiled kernel tier (one kernels_isa.cpp object).
/// `hw_expand` answers whether that tier's codegen carries the chunked
/// hardware vexpand for (element type, S_VVec); `compiled_tier` is the
/// simd::IsaTier the object was actually compiled for (a CSCV_NATIVE build
/// compiles one object whose flags follow the host, so it self-reports).
struct TierOps {
  KernelSet<float> (*resolve_f)(bool is_m, int s_vvec, int s_vxg, bool use_hw,
                                int num_rhs, ValueType value_type) = nullptr;
  KernelSet<double> (*resolve_d)(bool is_m, int s_vvec, int s_vxg, bool use_hw,
                                 int num_rhs, ValueType value_type) = nullptr;
  bool (*hw_expand)(bool is_double, int s_vvec) = nullptr;
  int compiled_tier = 0;
};

/// The TierOps registered for `tier`, or nullptr when this binary does not
/// carry that tier. At least one tier is always present.
const TierOps* tier_ops(simd::IsaTier tier);

inline bool tier_registered(simd::IsaTier tier) { return tier_ops(tier) != nullptr; }

/// Outcome of level-one dispatch: the tier that will run, whether the caller
/// (env var or PlanOptions) forced a specific tier, and whether that request
/// had to be clamped to a different tier because the binary does not carry
/// it or the CPU cannot run it.
struct TierChoice {
  simd::IsaTier tier = simd::IsaTier::kGeneric;
  bool forced = false;
  bool clamped = false;

  friend bool operator==(const TierChoice&, const TierChoice&) = default;
};

/// Reads the CSCV_FORCE_ISA environment variable. Unset or "auto" means no
/// force (kAuto); an unrecognized value throws util::CheckError.
simd::IsaTier forced_tier_from_env();

/// Level-one dispatch. kAuto consults CSCV_FORCE_ISA, then picks the highest
/// registered tier the CPU supports (cached — "once per process"). A
/// concrete request resolves to the highest registered + CPU-supported tier
/// not above it, falling back to the lowest registered tier; `clamped` is
/// set whenever the result differs from the request.
TierChoice select_tier(simd::IsaTier requested = simd::IsaTier::kAuto);

/// Level-one dispatch with the per-dtype CPU clamp on top: the avx2/avx512
/// tier objects widen fp16 values with F16C instructions (vcvtph2ps), so an
/// fp16 matrix on a CPU without the f16c bit falls back to the generic
/// tier's soft-float widening — clamp-and-flag, like any other
/// unsatisfiable request. bf16 widening is integer-only and never clamps.
TierChoice select_tier_for_dtype(simd::IsaTier requested, ValueType value_type);

/// Resolves an ExpandPath against the CPU *and* the selected tier's compiled
/// capabilities: CSCV-M only uses hardware expansion when `tier`'s codegen
/// has it for (element type, S_VVec) and the CPU agrees.
bool resolve_expand_path(simd::ExpandPath path, bool is_double, int s_vvec,
                         simd::IsaTier tier);

/// Level-two dispatch inside `tier` (must be a registered tier, i.e. the
/// .tier of a TierChoice): resolves (variant, S_VVec, S_VxG, expand path,
/// num_rhs) to concrete kernels. `use_hw` must already be resolved via
/// resolve_expand_path. Defined in dispatch.cpp for T = float, double.
/// `value_type` selects the storage decode: kF32 sets read T directly,
/// reduced dtypes (float only; kAuto is not a valid resolution input) get
/// the widen-on-load wrappers.
template <typename T>
KernelSet<T> resolve_kernels(typename CscvMatrix<T>::Variant variant, int s_vvec, int s_vxg,
                             bool use_hw, int num_rhs, simd::IsaTier tier,
                             ValueType value_type = ValueType::kF32);

}  // namespace cscv::core::dispatch
