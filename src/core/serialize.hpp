// Binary serialization of CscvMatrix.
//
// CSCV conversion costs a full pass over the matrix with per-block
// reordering; production pipelines convert once and reload. The format is
// a tagged little-endian dump of the flat arrays with a header carrying
// the parameters, layout, and element type; versioned so future layout
// changes stay detectable.
#pragma once

#include <iosfwd>
#include <string>

#include "core/format.hpp"

namespace cscv::core {

inline constexpr std::uint32_t kCscvFileMagic = 0x43534356;  // "CSCV"
/// Version 2 added the precision header (value dtype tag + sparsify eps +
/// certified error bound) and dtype-sized value payloads; version-1 files
/// (always fp32-in-T, never sparsified) still load (docs/FORMAT.md).
inline constexpr std::uint32_t kCscvFileVersion = 2;

/// Writes `m` to a binary stream. Throws CheckError on I/O failure.
template <typename T>
void save_cscv(std::ostream& out, const CscvMatrix<T>& m);

/// Reads a CscvMatrix written by save_cscv. Validates magic, version, and
/// element type; throws CheckError on any mismatch or truncation.
template <typename T>
CscvMatrix<T> load_cscv(std::istream& in);

template <typename T>
void save_cscv_file(const std::string& path, const CscvMatrix<T>& m);

template <typename T>
CscvMatrix<T> load_cscv_file(const std::string& path);

extern template void save_cscv<float>(std::ostream&, const CscvMatrix<float>&);
extern template void save_cscv<double>(std::ostream&, const CscvMatrix<double>&);
extern template CscvMatrix<float> load_cscv<float>(std::istream&);
extern template CscvMatrix<double> load_cscv<double>(std::istream&);
extern template void save_cscv_file<float>(const std::string&, const CscvMatrix<float>&);
extern template void save_cscv_file<double>(const std::string&, const CscvMatrix<double>&);
extern template CscvMatrix<float> load_cscv_file<float>(const std::string&);
extern template CscvMatrix<double> load_cscv_file<double>(const std::string&);

}  // namespace cscv::core
