// CSCV tuning parameters (the paper's S_VVec, S_ImgB, S_VxG) and policy
// knobs for the ablation studies.
#pragma once

#include <string>

#include "util/assertx.hpp"

namespace cscv::core {

/// How the reference trajectory r_k(v) of a block is chosen (Section IV-C:
/// "the reference pixel is determined by the center point of the pixel
/// block"). The alternatives exist for the Fig. 5 ablation.
enum class ReferenceStrategy {
  kBlockCenter,   // the paper's choice: min-bin curve of the center pixel
  kBlockCorner,   // worst-ish case: the (0,0) pixel of the block
  kMinEnvelope,   // per-view min bin over all block pixels (offsets >= 0)
  kConstantBtb,   // constant reference (block-wide min bin): CSCVEs become
                  // plain view-major vectors at fixed bins — the Block
                  // Transpose Buffer of Wang et al. [14], the layout the
                  // paper's Fig. 4 compares IOBLR against. No trajectory
                  // following, so padding grows wherever trajectories move.
};

/// Processing order of VxGs inside a block (Fig. 6's two sort steps).
enum class VxgOrder {
  kNatural,   // column-major build order
  kByOffset,  // sort by starting bin offset (Fig. 6a)
  kByCount,   // sort by nonzero count, descending (Fig. 6b)
};

struct CscvParams {
  int s_vvec = 8;   // CSCVE length == views per matrix block
  int s_imgb = 16;  // image block side, in pixels
  int s_vxg = 2;    // CSCVEs per Vectorized eXecution Group
  ReferenceStrategy reference = ReferenceStrategy::kBlockCenter;
  VxgOrder order = VxgOrder::kByOffset;

  void validate() const {
    CSCV_CHECK_MSG(s_vvec == 4 || s_vvec == 8 || s_vvec == 16,
                   "S_VVec must be 4, 8 or 16 (got " << s_vvec << ")");
    CSCV_CHECK_MSG(s_imgb >= 1, "S_ImgB must be positive");
    CSCV_CHECK_MSG(s_vxg == 1 || s_vxg == 2 || s_vxg == 4 || s_vxg == 8 || s_vxg == 16,
                   "S_VxG must be 1, 2, 4, 8 or 16 (got " << s_vxg << ")");
  }

  friend bool operator==(const CscvParams&, const CscvParams&) = default;
};

inline std::string reference_name(ReferenceStrategy s) {
  switch (s) {
    case ReferenceStrategy::kBlockCenter: return "center";
    case ReferenceStrategy::kBlockCorner: return "corner";
    case ReferenceStrategy::kMinEnvelope: return "envelope";
    case ReferenceStrategy::kConstantBtb: return "btb_view_major";
  }
  return "?";
}

inline std::string vxg_order_name(VxgOrder o) {
  switch (o) {
    case VxgOrder::kNatural: return "natural";
    case VxgOrder::kByOffset: return "by_offset";
    case VxgOrder::kByCount: return "by_count";
  }
  return "?";
}

/// Inverse of reference_name; CheckError on unknown names (the service wire
/// format parses these from client JSON).
inline ReferenceStrategy reference_from_name(const std::string& name) {
  if (name == "center") return ReferenceStrategy::kBlockCenter;
  if (name == "corner") return ReferenceStrategy::kBlockCorner;
  if (name == "envelope") return ReferenceStrategy::kMinEnvelope;
  if (name == "btb_view_major") return ReferenceStrategy::kConstantBtb;
  CSCV_CHECK_MSG(false, "unknown reference strategy \"" << name
                        << "\" (want center|corner|envelope|btb_view_major)");
  return ReferenceStrategy::kBlockCenter;  // unreachable
}

/// Inverse of vxg_order_name; CheckError on unknown names.
inline VxgOrder vxg_order_from_name(const std::string& name) {
  if (name == "natural") return VxgOrder::kNatural;
  if (name == "by_offset") return VxgOrder::kByOffset;
  if (name == "by_count") return VxgOrder::kByCount;
  CSCV_CHECK_MSG(false, "unknown VxG order \"" << name
                        << "\" (want natural|by_offset|by_count)");
  return VxgOrder::kNatural;  // unreachable
}

}  // namespace cscv::core
