// CSCV one-shot apply entry points and the serial Algorithm-3 path.
//
// The parallel drivers (block scheduling, weighted partitions, private-y
// reduction, kernel dispatch) live in the plan layer (plan.cpp /
// dispatch.hpp); spmv / spmv_multi / spmv_transpose are conveniences that
// route through the matrix's cached SpmvPlan, so repeated calls on one
// matrix hit a fully warmed execution context.
#include <algorithm>
#include <type_traits>

#include "core/dispatch.hpp"
#include "core/format.hpp"
#include "core/plan.hpp"
#include "simd/isa.hpp"
#include "util/assertx.hpp"
#include "util/parallel.hpp"

namespace cscv::core {

using sparse::index_t;
using sparse::offset_t;

template <typename T>
void CscvMatrix<T>::scatter_add_block(int block, const T* ytilde, T* y) const {
  const BlockInfo& info = blocks_[static_cast<std::size_t>(block)];
  const int s = params_.s_vvec;
  const int v0 = grid_.first_view(info.view_group);
  const int s_eff = std::min(s, layout_.num_views - v0);
  for (int vi = 0; vi < s_eff; ++vi) {
    const int ref = refs_[static_cast<std::size_t>(block) * s + vi];
    // Valid offset indices keep the bin ref + o_min + o_idx on the detector.
    const int lo = std::max(0, -(ref + info.o_min));
    const int hi = std::min(info.o_count, layout_.num_bins - ref - info.o_min);
    T* yrow = y + static_cast<std::size_t>(layout_.row_of(v0 + vi, 0));
    const int bin0 = ref + info.o_min;
    for (int o = lo; o < hi; ++o) {
      yrow[bin0 + o] += ytilde[static_cast<std::size_t>(o) * s + vi];
    }
  }
}

template <typename T>
void CscvMatrix<T>::gather_block(int block, const T* y, T* ytilde) const {
  const BlockInfo& info = blocks_[static_cast<std::size_t>(block)];
  const int s = params_.s_vvec;
  const int v0 = grid_.first_view(info.view_group);
  const int s_eff = std::min(s, layout_.num_views - v0);
  std::fill_n(ytilde, static_cast<std::size_t>(info.o_count) * s, T(0));
  for (int vi = 0; vi < s_eff; ++vi) {
    const int ref = refs_[static_cast<std::size_t>(block) * s + vi];
    const int lo = std::max(0, -(ref + info.o_min));
    const int hi = std::min(info.o_count, layout_.num_bins - ref - info.o_min);
    const T* yrow = y + static_cast<std::size_t>(layout_.row_of(v0 + vi, 0));
    const int bin0 = ref + info.o_min;
    for (int o = lo; o < hi; ++o) {
      ytilde[static_cast<std::size_t>(o) * s + vi] = yrow[bin0 + o];
    }
  }
}

template <typename T>
void CscvMatrix<T>::run_block(int block, std::span<const T> x, T* ytilde,
                              const dispatch::KernelSet<T>& kernels) const {
  const BlockInfo& info = blocks_[static_cast<std::size_t>(block)];
  kernels.forward(info.vxg_begin, info.vxg_end, vxg_col_.data(), vxg_q_.data(),
                  value_ptr(info.val_begin), masks_.data(), x.data(), ytilde);
}

template <typename T>
void CscvMatrix<T>::spmv(std::span<const T> x, std::span<T> y, ThreadScheme scheme,
                         simd::ExpandPath path) const {
  plan({.scheme = scheme, .path = path}).execute(x, y);
}

template <typename T>
void CscvMatrix<T>::spmv_multi(std::span<const T> x, std::span<T> y, int num_rhs,
                               ThreadScheme scheme) const {
  CSCV_CHECK(num_rhs >= 1);
  if (num_rhs == 1) {  // the single-RHS kernels are strictly better tuned
    spmv(x, y, scheme);
    return;
  }
  plan({.scheme = scheme, .num_rhs = num_rhs}).execute(x, y);
}

template <typename T>
void CscvMatrix<T>::spmv_transpose(std::span<const T> y, std::span<T> x,
                                   simd::ExpandPath path) const {
  plan({.path = path}).execute_transpose(y, x);
}

template <typename T>
void CscvMatrix<T>::spmv_transpose_multi(std::span<const T> y, std::span<T> x,
                                         int num_rhs) const {
  CSCV_CHECK(num_rhs >= 1);
  if (num_rhs == 1) {
    spmv_transpose(y, x);
    return;
  }
  plan({.num_rhs = num_rhs}).execute_transpose(y, x);
}

template <typename T>
void CscvMatrix<T>::apply_accumulate(std::span<const T> x, std::span<T> y,
                                     simd::ExpandPath path) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols());
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows());
  // Both dispatch levels resolve once per apply, not once per block: pick
  // the ISA tier (honoring CSCV_FORCE_ISA), resolve the expand path against
  // it, and fetch the kernel set the block loop will reuse.
  const simd::IsaTier tier =
      dispatch::select_tier_for_dtype(simd::IsaTier::kAuto, value_type_).tier;
  const bool use_hw =
      variant_ == Variant::kM &&
      dispatch::resolve_expand_path(path, std::is_same_v<T, double>, params_.s_vvec, tier);
  const dispatch::KernelSet<T> kernels = dispatch::resolve_kernels<T>(
      variant_, params_.s_vvec, params_.s_vxg, use_hw, 1, tier, value_type_);
  // Algorithm 3 verbatim: per block, reorder y into y~ with iota_k, run the
  // vectorized kernel, reorder back with the inverse mapping. Serial: blocks
  // of one view group overlap in y, so they must not run concurrently here.
  util::AlignedVector<T> ytilde(std::max<std::size_t>(ytilde_max_slots_, 1));
  util::AlignedVector<T> before(std::max<std::size_t>(ytilde_max_slots_, 1));
  for (int b = 0; b < num_blocks(); ++b) {
    const BlockInfo& info = blocks_[static_cast<std::size_t>(b)];
    if (info.vxg_begin == info.vxg_end) continue;
    gather_block(b, y.data(), ytilde.data());
    const std::size_t slots = static_cast<std::size_t>(info.o_count) * params_.s_vvec;
    std::copy_n(ytilde.data(), slots, before.data());
    run_block(b, x, ytilde.data(), kernels);
    // Scatter-add the delta: live slots were gathered, so adding
    // (after - before) is the inverse reorder without double counting.
    for (std::size_t i = 0; i < slots; ++i) ytilde[i] -= before[i];
    scatter_add_block(b, ytilde.data(), y.data());
  }
}

template void CscvMatrix<float>::spmv_multi(std::span<const float>, std::span<float>, int,
                                            ThreadScheme) const;
template void CscvMatrix<double>::spmv_multi(std::span<const double>, std::span<double>, int,
                                             ThreadScheme) const;

template void CscvMatrix<float>::spmv_transpose(std::span<const float>, std::span<float>,
                                                simd::ExpandPath) const;
template void CscvMatrix<double>::spmv_transpose(std::span<const double>, std::span<double>,
                                                 simd::ExpandPath) const;
template void CscvMatrix<float>::spmv_transpose_multi(std::span<const float>,
                                                      std::span<float>, int) const;
template void CscvMatrix<double>::spmv_transpose_multi(std::span<const double>,
                                                       std::span<double>, int) const;

// The class is explicitly instantiated member-by-member across builder.cpp,
// spmv.cpp, and plan.cpp (the definitions are split between the TUs).
template void CscvMatrix<float>::spmv(std::span<const float>, std::span<float>, ThreadScheme,
                                      simd::ExpandPath) const;
template void CscvMatrix<double>::spmv(std::span<const double>, std::span<double>,
                                       ThreadScheme, simd::ExpandPath) const;
template void CscvMatrix<float>::apply_accumulate(std::span<const float>, std::span<float>,
                                                  simd::ExpandPath) const;
template void CscvMatrix<double>::apply_accumulate(std::span<const double>,
                                                   std::span<double>,
                                                   simd::ExpandPath) const;
template void CscvMatrix<float>::gather_block(int, const float*, float*) const;
template void CscvMatrix<double>::gather_block(int, const double*, double*) const;
template void CscvMatrix<float>::scatter_add_block(int, const float*, float*) const;
template void CscvMatrix<double>::scatter_add_block(int, const double*, double*) const;
template void CscvMatrix<float>::run_block(int, std::span<const float>, float*,
                                           const dispatch::KernelSet<float>&) const;
template void CscvMatrix<double>::run_block(int, std::span<const double>, double*,
                                            const dispatch::KernelSet<double>&) const;

}  // namespace cscv::core
