// CSCV SpMV drivers: block scheduling, scatter/gather (the iota_k mapping of
// Algorithm 3), thread-level parallelism (Section IV-E).
#include <algorithm>
#include <type_traits>

#include "core/format.hpp"
#include "core/kernels.hpp"
#include "simd/isa.hpp"
#include "util/assertx.hpp"
#include "util/parallel.hpp"

namespace cscv::core {

using sparse::index_t;
using sparse::offset_t;

namespace {

/// Resolves kAuto against CPU + binary capabilities for element type T and
/// CSCVE width S (CSCV-M only uses hardware expansion when it exists).
template <typename T>
bool resolve_expand_path(simd::ExpandPath path, int s_vvec) {
  switch (path) {
    case simd::ExpandPath::kHardware: return true;
    case simd::ExpandPath::kSoftware: return false;
    case simd::ExpandPath::kAuto: break;
  }
  if (!(simd::cpu_isa().avx512f && simd::kCompiledAvx512f)) return false;
  // Narrow widths need AVX-512VL; chunked double-16 needs only F.
  switch (s_vvec) {
    case 16: return true;
    case 8:
      return sizeof(T) == 8 || (simd::cpu_isa().avx512vl && simd::kCompiledAvx512vl);
    case 4: return simd::cpu_isa().avx512vl && simd::kCompiledAvx512vl;
    default: return false;
  }
}

}  // namespace

template <typename T>
void CscvMatrix<T>::scatter_add_block(int block, const T* ytilde, T* y) const {
  const BlockInfo& info = blocks_[static_cast<std::size_t>(block)];
  const int s = params_.s_vvec;
  const int v0 = grid_.first_view(info.view_group);
  const int s_eff = std::min(s, layout_.num_views - v0);
  for (int vi = 0; vi < s_eff; ++vi) {
    const int ref = refs_[static_cast<std::size_t>(block) * s + vi];
    // Valid offset indices keep the bin ref + o_min + o_idx on the detector.
    const int lo = std::max(0, -(ref + info.o_min));
    const int hi = std::min(info.o_count, layout_.num_bins - ref - info.o_min);
    T* yrow = y + static_cast<std::size_t>(layout_.row_of(v0 + vi, 0));
    const int bin0 = ref + info.o_min;
    for (int o = lo; o < hi; ++o) {
      yrow[bin0 + o] += ytilde[static_cast<std::size_t>(o) * s + vi];
    }
  }
}

template <typename T>
void CscvMatrix<T>::gather_block(int block, const T* y, T* ytilde) const {
  const BlockInfo& info = blocks_[static_cast<std::size_t>(block)];
  const int s = params_.s_vvec;
  const int v0 = grid_.first_view(info.view_group);
  const int s_eff = std::min(s, layout_.num_views - v0);
  std::fill_n(ytilde, static_cast<std::size_t>(info.o_count) * s, T(0));
  for (int vi = 0; vi < s_eff; ++vi) {
    const int ref = refs_[static_cast<std::size_t>(block) * s + vi];
    const int lo = std::max(0, -(ref + info.o_min));
    const int hi = std::min(info.o_count, layout_.num_bins - ref - info.o_min);
    const T* yrow = y + static_cast<std::size_t>(layout_.row_of(v0 + vi, 0));
    const int bin0 = ref + info.o_min;
    for (int o = lo; o < hi; ++o) {
      ytilde[static_cast<std::size_t>(o) * s + vi] = yrow[bin0 + o];
    }
  }
}

template <typename T>
void CscvMatrix<T>::run_block(int block, std::span<const T> x, T* ytilde, bool use_hw) const {
  const BlockInfo& info = blocks_[static_cast<std::size_t>(block)];
  const int s = params_.s_vvec;
  const int v = params_.s_vxg;
  const auto dispatch = [&](auto s_tag, auto v_tag) {
    constexpr int S = decltype(s_tag)::value;
    constexpr int V = decltype(v_tag)::value;
    if (variant_ == Variant::kZ) {
      kernels::run_block_z<T, S, V>(info.vxg_begin, info.vxg_end, vxg_col_.data(),
                                    vxg_q_.data(), values_.data() + info.val_begin,
                                    x.data(), ytilde);
    } else if (use_hw) {
      if constexpr (simd::has_chunked_hardware_expand<T, S>()) {
        kernels::run_block_m<T, S, V, true>(info.vxg_begin, info.vxg_end, vxg_col_.data(),
                                            vxg_q_.data(), values_.data() + info.val_begin,
                                            masks_.data(), x.data(), ytilde);
      } else {
        kernels::run_block_m<T, S, V, false>(info.vxg_begin, info.vxg_end, vxg_col_.data(),
                                             vxg_q_.data(), values_.data() + info.val_begin,
                                             masks_.data(), x.data(), ytilde);
      }
    } else {
      kernels::run_block_m<T, S, V, false>(info.vxg_begin, info.vxg_end, vxg_col_.data(),
                                           vxg_q_.data(), values_.data() + info.val_begin,
                                           masks_.data(), x.data(), ytilde);
    }
  };
  using std::integral_constant;
  const auto with_v = [&](auto s_tag) {
    switch (v) {
      case 1: dispatch(s_tag, integral_constant<int, 1>{}); break;
      case 2: dispatch(s_tag, integral_constant<int, 2>{}); break;
      case 4: dispatch(s_tag, integral_constant<int, 4>{}); break;
      case 8: dispatch(s_tag, integral_constant<int, 8>{}); break;
      case 16: dispatch(s_tag, integral_constant<int, 16>{}); break;
      default: CSCV_CHECK_MSG(false, "bad S_VxG " << v);
    }
  };
  switch (s) {
    case 4: with_v(integral_constant<int, 4>{}); break;
    case 8: with_v(integral_constant<int, 8>{}); break;
    case 16: with_v(integral_constant<int, 16>{}); break;
    default: CSCV_CHECK_MSG(false, "bad S_VVec " << s);
  }
}

template <typename T>
void CscvMatrix<T>::spmv(std::span<const T> x, std::span<T> y, ThreadScheme scheme,
                         simd::ExpandPath path) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols());
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows());
  const bool use_hw = variant_ == Variant::kM && resolve_expand_path<T>(path, params_.s_vvec);
  const int threads = util::max_threads();

  ThreadScheme resolved = scheme;
  if (resolved == ThreadScheme::kAuto) {
    resolved = grid_.view_groups >= threads ? ThreadScheme::kRowPartition
                                            : ThreadScheme::kPrivateY;
  }
  if (threads == 1) resolved = ThreadScheme::kRowPartition;  // trivially race-free

  std::fill(y.begin(), y.end(), T(0));
  const int tiles_per_group = grid_.tiles_x * grid_.tiles_y;
  const std::size_t scratch_slots = std::max<std::size_t>(ytilde_max_slots_, 1);

  if (resolved == ThreadScheme::kRowPartition) {
    // Threads own whole view groups: their blocks write disjoint y rows, so
    // scatter goes straight into the shared output.
    util::parallel_region([&](int tid, int nthreads) {
      auto [g0, g1] = util::static_partition(static_cast<std::size_t>(grid_.view_groups),
                                             nthreads, tid);
      util::AlignedVector<T> ytilde(scratch_slots);
      for (std::size_t g = g0; g < g1; ++g) {
        for (int tb = 0; tb < tiles_per_group; ++tb) {
          const int b = static_cast<int>(g) * tiles_per_group + tb;
          const BlockInfo& info = blocks_[static_cast<std::size_t>(b)];
          if (info.vxg_begin == info.vxg_end) continue;
          std::fill_n(ytilde.data(),
                      static_cast<std::size_t>(info.o_count) * params_.s_vvec, T(0));
          run_block(b, x, ytilde.data(), use_hw);
          scatter_add_block(b, ytilde.data(), y.data());
        }
      }
    });
    return;
  }

  // Private-copy scheme (the paper's description): threads split the block
  // list; each accumulates into its own y copy; copies are reduced in a
  // second parallel pass.
  const std::size_t m = y.size();
  util::AlignedVector<T> copies(static_cast<std::size_t>(threads) * m, T(0));
  util::parallel_region([&](int tid, int nthreads) {
    auto [b0, b1] = util::static_partition(blocks_.size(), nthreads, tid);
    util::AlignedVector<T> ytilde(scratch_slots);
    T* yc = copies.data() + static_cast<std::size_t>(tid) * m;
    for (std::size_t b = b0; b < b1; ++b) {
      const BlockInfo& info = blocks_[b];
      if (info.vxg_begin == info.vxg_end) continue;
      std::fill_n(ytilde.data(), static_cast<std::size_t>(info.o_count) * params_.s_vvec,
                  T(0));
      run_block(static_cast<int>(b), x, ytilde.data(), use_hw);
      scatter_add_block(static_cast<int>(b), ytilde.data(), yc);
    }
  });
  util::parallel_region([&](int tid, int nthreads) {
    auto [r0, r1] = util::static_partition(m, nthreads, tid);
    for (std::size_t r = r0; r < r1; ++r) {
      T acc = T(0);
      for (int t = 0; t < threads; ++t) acc += copies[static_cast<std::size_t>(t) * m + r];
      y[r] = acc;
    }
  });
}

template <typename T>
void CscvMatrix<T>::apply_accumulate(std::span<const T> x, std::span<T> y,
                                     simd::ExpandPath path) const {
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols());
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows());
  const bool use_hw = variant_ == Variant::kM && resolve_expand_path<T>(path, params_.s_vvec);
  // Algorithm 3 verbatim: per block, reorder y into y~ with iota_k, run the
  // vectorized kernel, reorder back with the inverse mapping. Serial: blocks
  // of one view group overlap in y, so they must not run concurrently here.
  util::AlignedVector<T> ytilde(std::max<std::size_t>(ytilde_max_slots_, 1));
  util::AlignedVector<T> before(std::max<std::size_t>(ytilde_max_slots_, 1));
  for (int b = 0; b < num_blocks(); ++b) {
    const BlockInfo& info = blocks_[static_cast<std::size_t>(b)];
    if (info.vxg_begin == info.vxg_end) continue;
    gather_block(b, y.data(), ytilde.data());
    const std::size_t slots = static_cast<std::size_t>(info.o_count) * params_.s_vvec;
    std::copy_n(ytilde.data(), slots, before.data());
    run_block(b, x, ytilde.data(), use_hw);
    // Scatter-add the delta: live slots were gathered, so adding
    // (after - before) is the inverse reorder without double counting.
    for (std::size_t i = 0; i < slots; ++i) ytilde[i] -= before[i];
    scatter_add_block(b, ytilde.data(), y.data());
  }
}

template <typename T>
void CscvMatrix<T>::spmv_multi(std::span<const T> x, std::span<T> y, int num_rhs,
                               ThreadScheme scheme) const {
  CSCV_CHECK(num_rhs >= 1);
  const bool use_hw =
      variant_ == Variant::kM && resolve_expand_path<T>(simd::ExpandPath::kAuto,
                                                        params_.s_vvec);
  CSCV_CHECK(x.size() == static_cast<std::size_t>(cols()) * num_rhs);
  CSCV_CHECK(y.size() == static_cast<std::size_t>(rows()) * num_rhs);
  if (num_rhs == 1) {  // the single-RHS kernels are strictly better tuned
    spmv(x, y, scheme);
    return;
  }
  const int threads = util::max_threads();
  ThreadScheme resolved = scheme;
  if (resolved == ThreadScheme::kAuto) {
    resolved = grid_.view_groups >= threads ? ThreadScheme::kRowPartition
                                            : ThreadScheme::kPrivateY;
  }
  if (threads == 1) resolved = ThreadScheme::kRowPartition;
  std::fill(y.begin(), y.end(), T(0));
  const int tiles_per_group = grid_.tiles_x * grid_.tiles_y;
  const std::size_t scratch =
      std::max<std::size_t>(ytilde_max_slots_, 1) * static_cast<std::size_t>(num_rhs);
  const int s = params_.s_vvec;
  const int v = params_.s_vxg;

  // K-interleaved scatter: slot (o, vi) feeds y rows' K lanes contiguously.
  const auto scatter_multi = [&](int block, const T* ytilde, T* dst) {
    const BlockInfo& info = blocks_[static_cast<std::size_t>(block)];
    const int v0 = grid_.first_view(info.view_group);
    const int s_eff = std::min(s, layout_.num_views - v0);
    for (int vi = 0; vi < s_eff; ++vi) {
      const int ref = refs_[static_cast<std::size_t>(block) * s + vi];
      const int lo = std::max(0, -(ref + info.o_min));
      const int hi = std::min(info.o_count, layout_.num_bins - ref - info.o_min);
      const int bin0 = ref + info.o_min;
      T* yrow = dst + static_cast<std::size_t>(layout_.row_of(v0 + vi, 0)) * num_rhs;
      for (int o = lo; o < hi; ++o) {
        const T* src = ytilde + (static_cast<std::size_t>(o) * s + vi) * num_rhs;
        T* d = yrow + static_cast<std::size_t>(bin0 + o) * num_rhs;
        for (int k = 0; k < num_rhs; ++k) d[k] += src[k];
      }
    }
  };

  const auto run_multi = [&](int block, T* ytilde) {
    const BlockInfo& info = blocks_[static_cast<std::size_t>(block)];
    const auto dispatch = [&](auto s_tag, auto v_tag) {
      constexpr int S = decltype(s_tag)::value;
      constexpr int V = decltype(v_tag)::value;
      // Common slice counts get compile-time kernels (the runtime-K inner
      // loop defeats vectorization); anything else uses the generic path.
      const auto with_k = [&](auto k_tag) {
        constexpr int K = decltype(k_tag)::value;
        if (variant_ == Variant::kZ) {
          kernels::run_block_z_multi<T, S, V, K>(
              info.vxg_begin, info.vxg_end, vxg_col_.data(), vxg_q_.data(),
              values_.data() + info.val_begin, x.data(), num_rhs, ytilde);
        } else if (use_hw) {
          if constexpr (simd::has_chunked_hardware_expand<T, S>()) {
            kernels::run_block_m_multi<T, S, V, K, true>(
                info.vxg_begin, info.vxg_end, vxg_col_.data(), vxg_q_.data(),
                values_.data() + info.val_begin, masks_.data(), x.data(), num_rhs,
                ytilde);
          } else {
            kernels::run_block_m_multi<T, S, V, K, false>(
                info.vxg_begin, info.vxg_end, vxg_col_.data(), vxg_q_.data(),
                values_.data() + info.val_begin, masks_.data(), x.data(), num_rhs,
                ytilde);
          }
        } else {
          kernels::run_block_m_multi<T, S, V, K, false>(
              info.vxg_begin, info.vxg_end, vxg_col_.data(), vxg_q_.data(),
              values_.data() + info.val_begin, masks_.data(), x.data(), num_rhs, ytilde);
        }
      };
      using std::integral_constant;
      switch (num_rhs) {
        case 1: with_k(integral_constant<int, 1>{}); break;
        case 2: with_k(integral_constant<int, 2>{}); break;
        case 4: with_k(integral_constant<int, 4>{}); break;
        case 8: with_k(integral_constant<int, 8>{}); break;
        case 16: with_k(integral_constant<int, 16>{}); break;
        default: with_k(integral_constant<int, 0>{}); break;
      }
    };
    using std::integral_constant;
    const auto with_v = [&](auto s_tag) {
      switch (v) {
        case 1: dispatch(s_tag, integral_constant<int, 1>{}); break;
        case 2: dispatch(s_tag, integral_constant<int, 2>{}); break;
        case 4: dispatch(s_tag, integral_constant<int, 4>{}); break;
        case 8: dispatch(s_tag, integral_constant<int, 8>{}); break;
        case 16: dispatch(s_tag, integral_constant<int, 16>{}); break;
        default: CSCV_CHECK_MSG(false, "bad S_VxG " << v);
      }
    };
    switch (s) {
      case 4: with_v(integral_constant<int, 4>{}); break;
      case 8: with_v(integral_constant<int, 8>{}); break;
      case 16: with_v(integral_constant<int, 16>{}); break;
      default: CSCV_CHECK_MSG(false, "bad S_VVec " << s);
    }
  };

  if (resolved == ThreadScheme::kRowPartition) {
    util::parallel_region([&](int tid, int nthreads) {
      auto [g0, g1] = util::static_partition(static_cast<std::size_t>(grid_.view_groups),
                                             nthreads, tid);
      util::AlignedVector<T> ytilde(scratch);
      for (std::size_t g = g0; g < g1; ++g) {
        for (int tb = 0; tb < tiles_per_group; ++tb) {
          const int b = static_cast<int>(g) * tiles_per_group + tb;
          const BlockInfo& info = blocks_[static_cast<std::size_t>(b)];
          if (info.vxg_begin == info.vxg_end) continue;
          std::fill_n(ytilde.data(),
                      static_cast<std::size_t>(info.o_count) * s * num_rhs, T(0));
          run_multi(b, ytilde.data());
          scatter_multi(b, ytilde.data(), y.data());
        }
      }
    });
    return;
  }

  const std::size_t m = y.size();
  util::AlignedVector<T> copies(static_cast<std::size_t>(threads) * m, T(0));
  util::parallel_region([&](int tid, int nthreads) {
    auto [b0, b1] = util::static_partition(blocks_.size(), nthreads, tid);
    util::AlignedVector<T> ytilde(scratch);
    T* yc = copies.data() + static_cast<std::size_t>(tid) * m;
    for (std::size_t b = b0; b < b1; ++b) {
      const BlockInfo& info = blocks_[b];
      if (info.vxg_begin == info.vxg_end) continue;
      std::fill_n(ytilde.data(), static_cast<std::size_t>(info.o_count) * s * num_rhs,
                  T(0));
      run_multi(static_cast<int>(b), ytilde.data());
      scatter_multi(static_cast<int>(b), ytilde.data(), yc);
    }
  });
  util::parallel_region([&](int tid, int nthreads) {
    auto [r0, r1] = util::static_partition(m, nthreads, tid);
    for (std::size_t r = r0; r < r1; ++r) {
      T acc = T(0);
      for (int t = 0; t < threads; ++t) acc += copies[static_cast<std::size_t>(t) * m + r];
      y[r] = acc;
    }
  });
}

template void CscvMatrix<float>::spmv_multi(std::span<const float>, std::span<float>, int,
                                            ThreadScheme) const;
template void CscvMatrix<double>::spmv_multi(std::span<const double>, std::span<double>, int,
                                             ThreadScheme) const;

template <typename T>
void CscvMatrix<T>::spmv_transpose(std::span<const T> y, std::span<T> x,
                                   simd::ExpandPath /*path*/) const {
  CSCV_CHECK(static_cast<index_t>(y.size()) == rows());
  CSCV_CHECK(static_cast<index_t>(x.size()) == cols());
  std::fill(x.begin(), x.end(), T(0));

  const int tiles_per_group = grid_.tiles_x * grid_.tiles_y;
  const std::size_t scratch_slots = std::max<std::size_t>(ytilde_max_slots_, 1);
  const int s = params_.s_vvec;
  const int v = params_.s_vxg;

  // Threads own image tiles: the same tile across all view groups touches a
  // private x slice, so writes need no synchronization. y is read-only.
  util::parallel_region([&](int tid, int nthreads) {
    auto [t0, t1] =
        util::static_partition(static_cast<std::size_t>(tiles_per_group), nthreads, tid);
    util::AlignedVector<T> ytilde(scratch_slots);
    for (std::size_t tile = t0; tile < t1; ++tile) {
      for (int g = 0; g < grid_.view_groups; ++g) {
        const int b = g * tiles_per_group + static_cast<int>(tile);
        const BlockInfo& info = blocks_[static_cast<std::size_t>(b)];
        if (info.vxg_begin == info.vxg_end) continue;
        gather_block(b, y.data(), ytilde.data());
        const auto dispatch = [&](auto s_tag, auto v_tag) {
          constexpr int S = decltype(s_tag)::value;
          constexpr int V = decltype(v_tag)::value;
          if (variant_ == Variant::kZ) {
            kernels::run_block_z_transpose<T, S, V>(
                info.vxg_begin, info.vxg_end, vxg_col_.data(), vxg_q_.data(),
                values_.data() + info.val_begin, ytilde.data(), x.data());
          } else {
            kernels::run_block_m_transpose<T, S, V>(
                info.vxg_begin, info.vxg_end, vxg_col_.data(), vxg_q_.data(),
                values_.data() + info.val_begin, masks_.data(), ytilde.data(), x.data());
          }
        };
        using std::integral_constant;
        const auto with_v = [&](auto s_tag) {
          switch (v) {
            case 1: dispatch(s_tag, integral_constant<int, 1>{}); break;
            case 2: dispatch(s_tag, integral_constant<int, 2>{}); break;
            case 4: dispatch(s_tag, integral_constant<int, 4>{}); break;
            case 8: dispatch(s_tag, integral_constant<int, 8>{}); break;
            case 16: dispatch(s_tag, integral_constant<int, 16>{}); break;
            default: CSCV_CHECK_MSG(false, "bad S_VxG " << v);
          }
        };
        switch (s) {
          case 4: with_v(integral_constant<int, 4>{}); break;
          case 8: with_v(integral_constant<int, 8>{}); break;
          case 16: with_v(integral_constant<int, 16>{}); break;
          default: CSCV_CHECK_MSG(false, "bad S_VVec " << s);
        }
      }
    }
  });
}

template void CscvMatrix<float>::spmv_transpose(std::span<const float>, std::span<float>,
                                                simd::ExpandPath) const;
template void CscvMatrix<double>::spmv_transpose(std::span<const double>, std::span<double>,
                                                 simd::ExpandPath) const;

// The class is explicitly instantiated member-by-member across builder.cpp
// and spmv.cpp (the definitions are split between the two TUs).
template void CscvMatrix<float>::spmv(std::span<const float>, std::span<float>, ThreadScheme,
                                      simd::ExpandPath) const;
template void CscvMatrix<double>::spmv(std::span<const double>, std::span<double>,
                                       ThreadScheme, simd::ExpandPath) const;
template void CscvMatrix<float>::apply_accumulate(std::span<const float>, std::span<float>,
                                                  simd::ExpandPath) const;
template void CscvMatrix<double>::apply_accumulate(std::span<const double>,
                                                   std::span<double>,
                                                   simd::ExpandPath) const;
template void CscvMatrix<float>::gather_block(int, const float*, float*) const;
template void CscvMatrix<double>::gather_block(int, const double*, double*) const;
template void CscvMatrix<float>::scatter_add_block(int, const float*, float*) const;
template void CscvMatrix<double>::scatter_add_block(int, const double*, double*) const;
template void CscvMatrix<float>::run_block(int, std::span<const float>, float*, bool) const;
template void CscvMatrix<double>::run_block(int, std::span<const double>, double*,
                                            bool) const;

}  // namespace cscv::core
