#include "core/analysis.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "util/assertx.hpp"

namespace cscv::core {

namespace {

using sparse::index_t;

/// Collects one column's in-block nonzeros as (view lane, bin) pairs.
template <typename T>
std::vector<std::pair<int, int>> column_entries(const sparse::CscMatrix<T>& a,
                                                const OperatorLayout& layout,
                                                const BlockSpec& spec, index_t col) {
  std::vector<std::pair<int, int>> out;
  const index_t row_lo = layout.row_of(spec.v0, 0);
  const int v_end = std::min(spec.v0 + spec.s_vvec, layout.num_views);
  const index_t row_hi = layout.row_of(v_end - 1, layout.num_bins - 1) + 1;
  auto rows = a.row_idx();
  const auto begin = a.col_ptr()[static_cast<std::size_t>(col)];
  const auto end = a.col_ptr()[static_cast<std::size_t>(col) + 1];
  auto it = std::lower_bound(rows.begin() + begin, rows.begin() + end, row_lo);
  for (; it != rows.begin() + end && *it < row_hi; ++it) {
    out.emplace_back(layout.view_of_row(*it) - spec.v0, layout.bin_of_row(*it));
  }
  return out;
}

/// Min-bin curve of one pixel over the block's views; -1 where the column
/// has no nonzero at that view.
template <typename T>
std::vector<int> min_bin_curve(const sparse::CscMatrix<T>& a, const OperatorLayout& layout,
                               const BlockSpec& spec, int px, int py) {
  std::vector<int> curve(static_cast<std::size_t>(spec.s_vvec), -1);
  for (const auto& [vi, bin] : column_entries(a, layout, spec, layout.col_of_pixel(px, py))) {
    auto& slot = curve[static_cast<std::size_t>(vi)];
    if (slot < 0 || bin < slot) slot = bin;
  }
  return curve;
}

void accumulate(SimdEfficiency& eff, int covered) {
  if (eff.vectors == 0) {
    eff.min = eff.max = covered;
  } else {
    eff.min = std::min(eff.min, covered);
    eff.max = std::max(eff.max, covered);
  }
  eff.mean += covered;
  ++eff.vectors;
}

}  // namespace

template <typename T>
SimdEfficiency simd_efficiency(const sparse::CscMatrix<T>& a, const OperatorLayout& layout,
                               const BlockSpec& spec, YLayout y_layout) {
  CSCV_CHECK(spec.px0 < spec.px1 && spec.py0 < spec.py1 && spec.s_vvec > 0);
  SimdEfficiency eff;
  for (int py = spec.py0; py < spec.py1; ++py) {
    for (int px = spec.px0; px < spec.px1; ++px) {
      const auto entries = column_entries(a, layout, spec, layout.col_of_pixel(px, py));
      if (entries.empty()) continue;
      switch (y_layout) {
        case YLayout::kBinMajor: {
          // One vector covers the column's contiguous bin run of one view;
          // it holds as many nonzeros as that view contributes (the rest of
          // the s_vvec-wide register is other bins the column never uses).
          std::map<int, int> per_view;
          for (const auto& [vi, bin] : entries) per_view[vi]++;
          for (const auto& [vi, count] : per_view) accumulate(eff, count);
          break;
        }
        case YLayout::kViewMajor: {
          // One vector covers a single bin across the s_vvec views of the
          // group (the BTB transpose); the column hits that bin for however
          // many views its trajectory stays on it.
          std::map<int, int> per_bin;
          for (const auto& [vi, bin] : entries) per_bin[bin]++;
          for (const auto& [bin, count] : per_bin) accumulate(eff, count);
          break;
        }
        case YLayout::kIoblr: {
          // One vector is a CSCVE: a fixed offset from the block-center
          // reference trajectory across the view group.
          const int cx = std::min(spec.px0 + (spec.px1 - spec.px0) / 2, spec.px1 - 1);
          const int cy = std::min(spec.py0 + (spec.py1 - spec.py0) / 2, spec.py1 - 1);
          const auto ref = min_bin_curve(a, layout, spec, cx, cy);
          std::map<int, int> per_offset;
          for (const auto& [vi, bin] : entries) {
            const int r = ref[static_cast<std::size_t>(vi)];
            if (r < 0) continue;  // reference empty at this view: rare edge
            per_offset[bin - r]++;
          }
          for (const auto& [o, count] : per_offset) accumulate(eff, count);
          break;
        }
      }
    }
  }
  if (eff.vectors > 0) eff.mean /= static_cast<double>(eff.vectors);
  return eff;
}

template <typename T>
RefPixelStats reference_pixel_stats(const sparse::CscMatrix<T>& a,
                                    const OperatorLayout& layout, const BlockSpec& spec,
                                    int ref_px, int ref_py) {
  RefPixelStats st;
  st.ref_px = ref_px;
  st.ref_py = ref_py;
  const auto ref = min_bin_curve(a, layout, spec, ref_px, ref_py);
  st.offset_min = std::numeric_limits<int>::max();
  st.offset_max = std::numeric_limits<int>::min();
  long nnz = 0;
  for (int py = spec.py0; py < spec.py1; ++py) {
    for (int px = spec.px0; px < spec.px1; ++px) {
      std::set<int> offsets;
      for (const auto& [vi, bin] : column_entries(a, layout, spec, layout.col_of_pixel(px, py))) {
        const int r = ref[static_cast<std::size_t>(vi)];
        if (r < 0) continue;
        const int o = bin - r;
        offsets.insert(o);
        st.offset_min = std::min(st.offset_min, o);
        st.offset_max = std::max(st.offset_max, o);
        ++nnz;
      }
      st.cscve_count += static_cast<long>(offsets.size());
    }
  }
  st.padding_zeros = st.cscve_count * spec.s_vvec - nnz;
  if (st.cscve_count == 0) {
    st.offset_min = st.offset_max = 0;
  }
  return st;
}

template <typename T>
std::vector<RefPixelStats> all_reference_pixel_stats(const sparse::CscMatrix<T>& a,
                                                     const OperatorLayout& layout,
                                                     const BlockSpec& spec) {
  std::vector<RefPixelStats> out;
  for (int py = spec.py0; py < spec.py1; ++py) {
    for (int px = spec.px0; px < spec.px1; ++px) {
      out.push_back(reference_pixel_stats(a, layout, spec, px, py));
    }
  }
  return out;
}

template SimdEfficiency simd_efficiency<float>(const sparse::CscMatrix<float>&,
                                               const OperatorLayout&, const BlockSpec&,
                                               YLayout);
template SimdEfficiency simd_efficiency<double>(const sparse::CscMatrix<double>&,
                                                const OperatorLayout&, const BlockSpec&,
                                                YLayout);
template RefPixelStats reference_pixel_stats<float>(const sparse::CscMatrix<float>&,
                                                    const OperatorLayout&, const BlockSpec&,
                                                    int, int);
template RefPixelStats reference_pixel_stats<double>(const sparse::CscMatrix<double>&,
                                                     const OperatorLayout&, const BlockSpec&,
                                                     int, int);
template std::vector<RefPixelStats> all_reference_pixel_stats<float>(
    const sparse::CscMatrix<float>&, const OperatorLayout&, const BlockSpec&);
template std::vector<RefPixelStats> all_reference_pixel_stats<double>(
    const sparse::CscMatrix<double>&, const OperatorLayout&, const BlockSpec&);

}  // namespace cscv::core
