// Level-one kernel dispatch: the tier registry and its selection rules
// (docs/DISPATCH.md). The CSCV_MULTIVERSION compile definition (set by
// src/core/CMakeLists.txt on this library only) says whether the build
// linked all three kernels_isa.cpp instances or a single ambient-flags one.
#include <array>
#include <cstdlib>
#include <type_traits>

#include "core/dispatch.hpp"
#include "core/kernel_tiers.hpp"
#include "simd/isa.hpp"
#include "util/assertx.hpp"

#ifndef CSCV_MULTIVERSION
#define CSCV_MULTIVERSION 0
#endif

namespace cscv::core::dispatch {
namespace {

using TierTable = std::array<const TierOps*, simd::kNumIsaTiers>;

// Each linked kernels_isa.cpp instance lands at the slot of the tier its
// flags *actually* compiled (self-reported): in a CSCV_MULTIVERSION build
// the three instances fill slots 0..2; a single-object build (e.g.
// CSCV_NATIVE) registers its one instance wherever the host flags put it —
// possibly leaving lower slots empty, which select_tier's clamping handles.
const TierTable& tier_table() {
  static const TierTable table = [] {
    TierTable t{};
    const auto add = [&t](const TierOps* ops) {
      const int id = ops->compiled_tier;
      CSCV_CHECK_MSG(id >= 0 && id < simd::kNumIsaTiers, "bad kernel tier id " << id);
      CSCV_CHECK_MSG(t[static_cast<std::size_t>(id)] == nullptr,
                     "duplicate kernel tier registration for "
                         << simd::isa_tier_name(static_cast<simd::IsaTier>(id)));
      t[static_cast<std::size_t>(id)] = ops;
    };
    static const TierOps generic{&tier_generic::resolve_f, &tier_generic::resolve_d,
                                 &tier_generic::hw_expand, tier_generic::compiled_tier()};
    add(&generic);
#if CSCV_MULTIVERSION
    static const TierOps avx2{&tier_avx2::resolve_f, &tier_avx2::resolve_d,
                              &tier_avx2::hw_expand, tier_avx2::compiled_tier()};
    add(&avx2);
    static const TierOps avx512{&tier_avx512::resolve_f, &tier_avx512::resolve_d,
                                &tier_avx512::hw_expand, tier_avx512::compiled_tier()};
    add(&avx512);
#endif
    return t;
  }();
  return table;
}

simd::IsaTier lowest_registered() {
  const TierTable& t = tier_table();
  for (int i = 0; i < simd::kNumIsaTiers; ++i) {
    if (t[static_cast<std::size_t>(i)] != nullptr) return static_cast<simd::IsaTier>(i);
  }
  CSCV_CHECK_MSG(false, "no kernel tier registered");  // unreachable: generic always links
}

// "Once per process": the auto pick never changes, so cache it. Forced
// selections are not cached — tests flip CSCV_FORCE_ISA between plans.
simd::IsaTier best_registered_tier() {
  static const simd::IsaTier best = [] {
    const TierTable& t = tier_table();
    for (int i = simd::kNumIsaTiers - 1; i >= 0; --i) {
      const auto tier = static_cast<simd::IsaTier>(i);
      if (t[static_cast<std::size_t>(i)] != nullptr && simd::cpu_supports_tier(tier)) {
        return tier;
      }
    }
    return lowest_registered();
  }();
  return best;
}

}  // namespace

const TierOps* tier_ops(simd::IsaTier tier) {
  const int id = static_cast<int>(tier);
  if (id < 0 || id >= simd::kNumIsaTiers) return nullptr;
  return tier_table()[static_cast<std::size_t>(id)];
}

simd::IsaTier forced_tier_from_env() {
  const char* value = std::getenv("CSCV_FORCE_ISA");
  if (value == nullptr || *value == '\0') return simd::IsaTier::kAuto;
  return simd::parse_isa_tier(value);
}

TierChoice select_tier_for_dtype(simd::IsaTier requested, ValueType value_type) {
  TierChoice choice = select_tier(requested);
  // The avx2/avx512 tier objects are compiled with -mf16c and widen fp16
  // values with vcvtph2ps; a CPU without the f16c bit must run the generic
  // tier's soft-float widening instead. (Every avx512 CPU has f16c, so this
  // clamp only ever bites hand-forced or exotic configurations.) bf16
  // widening is an integer shift and never clamps.
  if (value_type == ValueType::kF16 && choice.tier != simd::IsaTier::kGeneric &&
      !simd::cpu_isa().f16c && tier_ops(simd::IsaTier::kGeneric) != nullptr) {
    choice.tier = simd::IsaTier::kGeneric;
    choice.clamped = true;
  }
  return choice;
}

TierChoice select_tier(simd::IsaTier requested) {
  if (requested == simd::IsaTier::kAuto) requested = forced_tier_from_env();
  TierChoice choice;
  if (requested == simd::IsaTier::kAuto) {
    choice.tier = best_registered_tier();
    return choice;
  }
  choice.forced = true;
  for (int i = static_cast<int>(requested); i >= 0; --i) {
    const auto tier = static_cast<simd::IsaTier>(i);
    if (tier_ops(tier) != nullptr && simd::cpu_supports_tier(tier)) {
      choice.tier = tier;
      choice.clamped = tier != requested;
      return choice;
    }
  }
  // Nothing at or below the request (a native single-tier binary asked for
  // a lower tier than it carries): run what we have.
  choice.tier = lowest_registered();
  choice.clamped = choice.tier != requested;
  return choice;
}

bool resolve_expand_path(simd::ExpandPath path, bool is_double, int s_vvec,
                         simd::IsaTier tier) {
  switch (path) {
    case simd::ExpandPath::kHardware: return true;
    case simd::ExpandPath::kSoftware: return false;
    case simd::ExpandPath::kAuto: break;
  }
  const TierOps* ops = tier_ops(tier);
  CSCV_CHECK_MSG(ops != nullptr,
                 "kernel tier '" << simd::isa_tier_name(tier) << "' not in this binary");
  if (!ops->hw_expand(is_double, s_vvec)) return false;  // tier codegen lacks it
  // CPU side: narrow widths need AVX-512VL; chunked double-16 needs only F.
  const simd::IsaInfo& isa = simd::cpu_isa();
  if (!isa.avx512f) return false;
  switch (s_vvec) {
    case 16: return true;
    case 8: return is_double || isa.avx512vl;
    case 4: return isa.avx512vl;
    default: return false;
  }
}

template <typename T>
KernelSet<T> resolve_kernels(typename CscvMatrix<T>::Variant variant, int s_vvec, int s_vxg,
                             bool use_hw, int num_rhs, simd::IsaTier tier,
                             ValueType value_type) {
  const TierOps* ops = tier_ops(tier);
  CSCV_CHECK_MSG(ops != nullptr,
                 "kernel tier '" << simd::isa_tier_name(tier) << "' not in this binary");
  const bool is_m = variant == CscvMatrix<T>::Variant::kM;
  if constexpr (std::is_same_v<T, float>) {
    return ops->resolve_f(is_m, s_vvec, s_vxg, use_hw, num_rhs, value_type);
  } else {
    return ops->resolve_d(is_m, s_vvec, s_vxg, use_hw, num_rhs, value_type);
  }
}

template KernelSet<float> resolve_kernels<float>(CscvMatrix<float>::Variant, int, int, bool,
                                                 int, simd::IsaTier, ValueType);
template KernelSet<double> resolve_kernels<double>(CscvMatrix<double>::Variant, int, int,
                                                   bool, int, simd::IsaTier, ValueType);

}  // namespace cscv::core::dispatch
