// One compiled kernel tier. The build compiles this TU once per ISA tier
// (CSCV_MULTIVERSION, src/core/CMakeLists.txt) with that tier's arch flags
// and -DCSCV_TIER_NS=tier_<name>; each instance exports the four entry
// points declared in core/kernel_tiers.hpp and dispatch.cpp assembles them
// into the runtime tier registry.
//
// Everything ISA-sensitive — the expand primitives, the block kernels, and
// the switch ladder that takes their addresses — is re-included below inside
// an anonymous namespace, NOT taken from the headers' cscv::simd /
// cscv::core::kernels instances. The headers' inline templates have vague
// linkage: if three differently-flagged TUs each emitted them, the linker
// would keep one arbitrary copy (a generic-tier binary could end up running
// AVX-512 code, or an "avx512 tier" could silently run generic code). The
// anonymous namespace gives every tier its own internal-linkage copy, so the
// per-TU arch flags actually stick to the code the tier hands out.
//
// Name resolution inside the shadows: kernels_body.inc calls simd::expand_*
// and dispatch_body.inc calls kernels::run_block_* unqualified; both resolve
// to the sibling shadow namespaces below (found before ::cscv::simd /
// ::cscv::core::kernels in the enclosing-scope walk), which is the point.
#include <bit>
#include <cstdint>
#include <type_traits>

#include "core/dispatch.hpp"
#include "core/kernel_tiers.hpp"
#include "core/kernels.hpp"  // CSCV_KERNEL_DCHECKS + the ambient-flags copy
#include "simd/expand.hpp"
#include "sparse/types.hpp"
#include "util/assertx.hpp"

#ifndef CSCV_TIER_NS
#error "core/kernels_isa.cpp must be compiled with -DCSCV_TIER_NS=tier_<name>"
#endif

namespace cscv::core::dispatch {
namespace {

namespace simd {
#include "simd/expand_body.inc"  // NOLINT(bugprone-suspicious-include)
}  // namespace simd

namespace kernels {
#include "core/kernels_body.inc"  // NOLINT(bugprone-suspicious-include)
}  // namespace kernels

#include "core/dispatch_body.inc"  // NOLINT(bugprone-suspicious-include)

}  // namespace

namespace CSCV_TIER_NS {

KernelSet<float> resolve_f(bool is_m, int s_vvec, int s_vxg, bool use_hw, int num_rhs,
                           ValueType value_type) {
  return resolve_impl<float>(is_m, s_vvec, s_vxg, use_hw, num_rhs, value_type);
}

KernelSet<double> resolve_d(bool is_m, int s_vvec, int s_vxg, bool use_hw, int num_rhs,
                            ValueType value_type) {
  return resolve_impl<double>(is_m, s_vvec, s_vxg, use_hw, num_rhs, value_type);
}

bool hw_expand(bool is_double, int s_vvec) {
  switch (s_vvec) {
    case 4:
      return is_double ? simd::has_chunked_hardware_expand<double, 4>()
                       : simd::has_chunked_hardware_expand<float, 4>();
    case 8:
      return is_double ? simd::has_chunked_hardware_expand<double, 8>()
                       : simd::has_chunked_hardware_expand<float, 8>();
    case 16:
      return is_double ? simd::has_chunked_hardware_expand<double, 16>()
                       : simd::has_chunked_hardware_expand<float, 16>();
    default: return false;
  }
}

int compiled_tier() {
#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX512DQ__)
  return 2;  // simd::IsaTier::kAvx512
#elif defined(__AVX2__) && defined(__FMA__)
  return 1;  // simd::IsaTier::kAvx2
#else
  return 0;  // simd::IsaTier::kGeneric
#endif
}

}  // namespace CSCV_TIER_NS
}  // namespace cscv::core::dispatch
