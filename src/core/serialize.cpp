#include "core/serialize.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "core/verify.hpp"
#include "util/assertx.hpp"

namespace cscv::core {

/// Private-member access shim for serialization (befriended by CscvMatrix).
template <typename T>
class CscvBuilderAccess {
 public:
  static void write(std::ostream& out, const CscvMatrix<T>& m);
  static CscvMatrix<T> read(std::istream& in);
};

namespace {

template <typename V>
void write_pod(std::ostream& out, const V& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(V));
}

template <typename V>
V read_pod(std::istream& in) {
  V v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(V));
  CSCV_CHECK_MSG(static_cast<bool>(in), "truncated CSCV file");
  return v;
}

template <typename Vec>
void write_array(std::ostream& out, const Vec& v) {
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(typename Vec::value_type)));
}

/// Bytes left in the stream past the current position, or -1 when the
/// stream is not seekable. Lets array reads reject a corrupted count before
/// allocating: a flipped count byte must not turn into a multi-gigabyte
/// resize followed by a short read.
std::int64_t remaining_bytes(std::istream& in) {
  const auto here = in.tellg();
  if (here == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1)) return -1;
  return static_cast<std::int64_t>(end - here);
}

/// Reads an array whose element count is known from the (already validated)
/// header. The stored count must match it exactly and the payload must fit
/// in the stream — both checked before any memory is touched.
template <typename Vec>
void read_array_checked(std::istream& in, Vec& v, std::uint64_t expected,
                        const char* what) {
  const auto n = read_pod<std::uint64_t>(in);
  CSCV_CHECK_MSG(n == expected, "cscv.array.count: " << what << " stores " << n
                                                     << " elements, header implies "
                                                     << expected);
  const std::uint64_t bytes = n * sizeof(typename Vec::value_type);
  const std::int64_t left = remaining_bytes(in);
  CSCV_CHECK_MSG(left < 0 || bytes <= static_cast<std::uint64_t>(left),
                 "cscv.array.payload: " << what << " claims " << bytes
                                        << " bytes, stream has " << left);
  v.resize(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(bytes));
  CSCV_CHECK_MSG(static_cast<bool>(in), "truncated CSCV array (" << what << ")");
}

}  // namespace

template <typename T>
void CscvBuilderAccess<T>::write(std::ostream& out, const CscvMatrix<T>& m) {
  write_pod<std::uint32_t>(out, kCscvFileMagic);
  write_pod<std::uint32_t>(out, kCscvFileVersion);
  write_pod<std::uint32_t>(out, sizeof(T));
  write_pod<std::int32_t>(out, static_cast<std::int32_t>(m.variant_));
  write_pod<std::int32_t>(out, m.params_.s_vvec);
  write_pod<std::int32_t>(out, m.params_.s_imgb);
  write_pod<std::int32_t>(out, m.params_.s_vxg);
  write_pod<std::int32_t>(out, static_cast<std::int32_t>(m.params_.reference));
  write_pod<std::int32_t>(out, static_cast<std::int32_t>(m.params_.order));
  write_pod<std::int32_t>(out, m.layout_.image_size);
  write_pod<std::int32_t>(out, m.layout_.num_bins);
  write_pod<std::int32_t>(out, m.layout_.num_views);
  write_pod<std::int64_t>(out, m.nnz_);
  write_pod<std::uint64_t>(out, m.ytilde_max_slots_);
  // Precision header (v2): storage dtype + the sparsify certificate.
  write_pod<std::int32_t>(out, static_cast<std::int32_t>(m.value_type_));
  write_pod<double>(out, m.sparsify_eps_);
  write_pod<double>(out, m.sparsify_bound_);
  write_array(out, m.blocks_);
  write_array(out, m.refs_);
  write_array(out, m.vxg_col_);
  write_array(out, m.vxg_q_);
  if (m.value_type_ == ValueType::kF32) {
    write_array(out, m.values_);
  } else {
    write_array(out, m.values16_);  // 2-byte elements, same slot layout
  }
  write_array(out, m.masks_);
  CSCV_CHECK_MSG(static_cast<bool>(out), "CSCV write failed");
}

// Deserialization is treated as hostile input: every header field is
// validated, and every array count is cross-checked against the sizes the
// header implies *before* any allocation or pointer arithmetic. After the
// raw arrays are in memory, the mandatory cheap-level structural verify
// (core/verify.hpp) re-checks the table invariants as a whole, so a blob
// that decodes but lies about its structure still fails to load.
template <typename T>
CscvMatrix<T> CscvBuilderAccess<T>::read(std::istream& in) {
  CSCV_CHECK_MSG(read_pod<std::uint32_t>(in) == kCscvFileMagic,
                 "cscv.header.magic: not a CSCV file");
  const auto version = read_pod<std::uint32_t>(in);
  CSCV_CHECK_MSG(version == 1 || version == kCscvFileVersion,
                 "cscv.header.version: unsupported CSCV file version " << version);
  CSCV_CHECK_MSG(read_pod<std::uint32_t>(in) == sizeof(T),
                 "cscv.header.elem_size: element type mismatch (saved with different "
                 "precision)");
  CscvMatrix<T> m;
  const auto variant = read_pod<std::int32_t>(in);
  CSCV_CHECK_MSG(variant == 0 || variant == 1,
                 "cscv.header.variant: unknown variant tag " << variant);
  m.variant_ = static_cast<typename CscvMatrix<T>::Variant>(variant);
  m.params_.s_vvec = read_pod<std::int32_t>(in);
  m.params_.s_imgb = read_pod<std::int32_t>(in);
  m.params_.s_vxg = read_pod<std::int32_t>(in);
  const auto reference = read_pod<std::int32_t>(in);
  CSCV_CHECK_MSG(reference >= 0 && reference <= static_cast<int>(ReferenceStrategy::kConstantBtb),
                 "cscv.header.reference: unknown reference strategy " << reference);
  m.params_.reference = static_cast<ReferenceStrategy>(reference);
  const auto order = read_pod<std::int32_t>(in);
  CSCV_CHECK_MSG(order >= 0 && order <= static_cast<int>(VxgOrder::kByCount),
                 "cscv.header.order: unknown VxG order " << order);
  m.params_.order = static_cast<VxgOrder>(order);
  m.layout_.image_size = read_pod<std::int32_t>(in);
  m.layout_.num_bins = read_pod<std::int32_t>(in);
  m.layout_.num_views = read_pod<std::int32_t>(in);
  m.params_.validate();
  m.layout_.validate();
  // Shape products must fit the 32-bit index type before anything derives
  // row/column counts from them (a corrupted header must not overflow into
  // a plausible-looking small grid).
  constexpr auto kIndexMax =
      static_cast<std::int64_t>(std::numeric_limits<sparse::index_t>::max());
  CSCV_CHECK_MSG(static_cast<std::int64_t>(m.layout_.num_views) * m.layout_.num_bins <=
                     kIndexMax,
                 "cscv.header.layout: num_views * num_bins overflows the row index");
  CSCV_CHECK_MSG(static_cast<std::int64_t>(m.layout_.image_size) * m.layout_.image_size <=
                     kIndexMax,
                 "cscv.header.layout: image_size^2 overflows the column index");
  m.grid_ = BlockGrid(m.layout_, m.params_.s_vvec, m.params_.s_imgb);
  const std::int64_t num_blocks =
      static_cast<std::int64_t>(m.grid_.view_groups) * m.grid_.tiles_y * m.grid_.tiles_x;
  CSCV_CHECK_MSG(num_blocks <= kIndexMax,
                 "cscv.header.layout: block grid overflows the block index");
  m.nnz_ = read_pod<std::int64_t>(in);
  CSCV_CHECK_MSG(m.nnz_ >= 0 && m.nnz_ <= static_cast<std::int64_t>(m.layout_.num_rows()) *
                                              m.layout_.num_cols(),
                 "cscv.header.nnz: nnz = " << m.nnz_ << " outside [0, rows*cols]");
  m.ytilde_max_slots_ = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  if (version >= 2) {
    const auto vt = read_pod<std::int32_t>(in);
    CSCV_CHECK_MSG(vt == static_cast<std::int32_t>(ValueType::kF32) ||
                       vt == static_cast<std::int32_t>(ValueType::kBf16) ||
                       vt == static_cast<std::int32_t>(ValueType::kF16),
                   "cscv.header.value_type: unknown value dtype tag " << vt);
    m.value_type_ = static_cast<ValueType>(vt);
    CSCV_CHECK_MSG(m.value_type_ == ValueType::kF32 || (std::is_same_v<T, float>),
                   "cscv.header.value_type: reduced dtype "
                       << value_type_name(m.value_type_) << " requires a float matrix");
    m.sparsify_eps_ = read_pod<double>(in);
    m.sparsify_bound_ = read_pod<double>(in);
    CSCV_CHECK_MSG(std::isfinite(m.sparsify_eps_) && m.sparsify_eps_ >= 0.0 &&
                       std::isfinite(m.sparsify_bound_) && m.sparsify_bound_ >= 0.0,
                   "cscv.header.sparsify: eps " << m.sparsify_eps_ << " / bound "
                                                << m.sparsify_bound_
                                                << " must be finite and non-negative");
  }  // version 1: fp32-in-T storage, never sparsified (the defaults)

  // Array counts are fully determined by the header plus the block table;
  // each read rejects a mismatched count before allocating.
  read_array_checked(in, m.blocks_, static_cast<std::uint64_t>(num_blocks), "block table");
  read_array_checked(in, m.refs_,
                     static_cast<std::uint64_t>(num_blocks) *
                         static_cast<std::uint64_t>(m.params_.s_vvec),
                     "reference bins");
  std::uint64_t num_vxgs = 0;
  for (std::size_t b = 0; b < m.blocks_.size(); ++b) {
    const auto& info = m.blocks_[b];
    CSCV_CHECK_MSG(info.vxg_begin == static_cast<sparse::offset_t>(num_vxgs) &&
                       info.vxg_end >= info.vxg_begin,
                   "cscv.block_table.vxg_contiguous: block "
                       << b << " VxG range [" << info.vxg_begin << ", " << info.vxg_end
                       << ") does not continue at " << num_vxgs);
    num_vxgs = static_cast<std::uint64_t>(info.vxg_end);
  }
  read_array_checked(in, m.vxg_col_, num_vxgs, "VxG columns");
  read_array_checked(in, m.vxg_q_, num_vxgs, "VxG start slots");
  const std::uint64_t expected_values =
      m.variant_ == CscvMatrix<T>::Variant::kZ
          ? num_vxgs * static_cast<std::uint64_t>(m.params_.s_vxg) *
                static_cast<std::uint64_t>(m.params_.s_vvec)
          : static_cast<std::uint64_t>(m.nnz_) +
                static_cast<std::uint64_t>(m.params_.s_vvec);
  if (m.value_type_ == ValueType::kF32) {
    read_array_checked(in, m.values_, expected_values, "values");
  } else {
    read_array_checked(in, m.values16_, expected_values, "values");
  }
  const std::uint64_t expected_masks =
      m.variant_ == CscvMatrix<T>::Variant::kZ
          ? 0
          : num_vxgs * static_cast<std::uint64_t>(m.params_.s_vxg);
  read_array_checked(in, m.masks_, expected_masks, "masks");

  // Mandatory structural pass over the decoded tables (docs/FORMAT.md §8).
  verify(m, VerifyLevel::kCheap).require_ok("cscv.load");
  return m;
}

template <typename T>
void save_cscv(std::ostream& out, const CscvMatrix<T>& m) {
  CscvBuilderAccess<T>::write(out, m);
}

template <typename T>
CscvMatrix<T> load_cscv(std::istream& in) {
  return CscvBuilderAccess<T>::read(in);
}

template <typename T>
void save_cscv_file(const std::string& path, const CscvMatrix<T>& m) {
  std::ofstream out(path, std::ios::binary);
  CSCV_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  save_cscv(out, m);
}

template <typename T>
CscvMatrix<T> load_cscv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CSCV_CHECK_MSG(in.is_open(), "cannot open " << path);
  return load_cscv<T>(in);
}

template void save_cscv<float>(std::ostream&, const CscvMatrix<float>&);
template void save_cscv<double>(std::ostream&, const CscvMatrix<double>&);
template CscvMatrix<float> load_cscv<float>(std::istream&);
template CscvMatrix<double> load_cscv<double>(std::istream&);
template void save_cscv_file<float>(const std::string&, const CscvMatrix<float>&);
template void save_cscv_file<double>(const std::string&, const CscvMatrix<double>&);
template CscvMatrix<float> load_cscv_file<float>(const std::string&);
template CscvMatrix<double> load_cscv_file<double>(const std::string&);

}  // namespace cscv::core
