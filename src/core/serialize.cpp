#include "core/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/assertx.hpp"

namespace cscv::core {

/// Private-member access shim for serialization (befriended by CscvMatrix).
template <typename T>
class CscvBuilderAccess {
 public:
  static void write(std::ostream& out, const CscvMatrix<T>& m);
  static CscvMatrix<T> read(std::istream& in);
};

namespace {

template <typename V>
void write_pod(std::ostream& out, const V& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(V));
}

template <typename V>
V read_pod(std::istream& in) {
  V v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(V));
  CSCV_CHECK_MSG(static_cast<bool>(in), "truncated CSCV file");
  return v;
}

template <typename Vec>
void write_array(std::ostream& out, const Vec& v) {
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(typename Vec::value_type)));
}

template <typename Vec>
void read_array(std::istream& in, Vec& v) {
  const auto n = read_pod<std::uint64_t>(in);
  v.resize(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(typename Vec::value_type)));
  CSCV_CHECK_MSG(static_cast<bool>(in), "truncated CSCV array");
}

}  // namespace

template <typename T>
void CscvBuilderAccess<T>::write(std::ostream& out, const CscvMatrix<T>& m) {
  write_pod<std::uint32_t>(out, kCscvFileMagic);
  write_pod<std::uint32_t>(out, kCscvFileVersion);
  write_pod<std::uint32_t>(out, sizeof(T));
  write_pod<std::int32_t>(out, static_cast<std::int32_t>(m.variant_));
  write_pod<std::int32_t>(out, m.params_.s_vvec);
  write_pod<std::int32_t>(out, m.params_.s_imgb);
  write_pod<std::int32_t>(out, m.params_.s_vxg);
  write_pod<std::int32_t>(out, static_cast<std::int32_t>(m.params_.reference));
  write_pod<std::int32_t>(out, static_cast<std::int32_t>(m.params_.order));
  write_pod<std::int32_t>(out, m.layout_.image_size);
  write_pod<std::int32_t>(out, m.layout_.num_bins);
  write_pod<std::int32_t>(out, m.layout_.num_views);
  write_pod<std::int64_t>(out, m.nnz_);
  write_pod<std::uint64_t>(out, m.ytilde_max_slots_);
  write_array(out, m.blocks_);
  write_array(out, m.refs_);
  write_array(out, m.vxg_col_);
  write_array(out, m.vxg_q_);
  write_array(out, m.values_);
  write_array(out, m.masks_);
  CSCV_CHECK_MSG(static_cast<bool>(out), "CSCV write failed");
}

template <typename T>
CscvMatrix<T> CscvBuilderAccess<T>::read(std::istream& in) {
  CSCV_CHECK_MSG(read_pod<std::uint32_t>(in) == kCscvFileMagic, "not a CSCV file");
  CSCV_CHECK_MSG(read_pod<std::uint32_t>(in) == kCscvFileVersion,
                 "unsupported CSCV file version");
  CSCV_CHECK_MSG(read_pod<std::uint32_t>(in) == sizeof(T),
                 "element type mismatch (saved with different precision)");
  CscvMatrix<T> m;
  m.variant_ = static_cast<typename CscvMatrix<T>::Variant>(read_pod<std::int32_t>(in));
  m.params_.s_vvec = read_pod<std::int32_t>(in);
  m.params_.s_imgb = read_pod<std::int32_t>(in);
  m.params_.s_vxg = read_pod<std::int32_t>(in);
  m.params_.reference = static_cast<ReferenceStrategy>(read_pod<std::int32_t>(in));
  m.params_.order = static_cast<VxgOrder>(read_pod<std::int32_t>(in));
  m.layout_.image_size = read_pod<std::int32_t>(in);
  m.layout_.num_bins = read_pod<std::int32_t>(in);
  m.layout_.num_views = read_pod<std::int32_t>(in);
  m.params_.validate();
  m.layout_.validate();
  m.grid_ = BlockGrid(m.layout_, m.params_.s_vvec, m.params_.s_imgb);
  m.nnz_ = read_pod<std::int64_t>(in);
  m.ytilde_max_slots_ = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  read_array(in, m.blocks_);
  read_array(in, m.refs_);
  read_array(in, m.vxg_col_);
  read_array(in, m.vxg_q_);
  read_array(in, m.values_);
  read_array(in, m.masks_);
  CSCV_CHECK_MSG(static_cast<int>(m.blocks_.size()) == m.grid_.num_blocks(),
                 "block table size does not match the grid");
  CSCV_CHECK_MSG(m.refs_.size() == m.blocks_.size() * static_cast<std::size_t>(m.params_.s_vvec),
                 "reference table size mismatch");
  CSCV_CHECK_MSG(m.vxg_col_.size() == m.vxg_q_.size(), "VxG index arrays disagree");
  return m;
}

template <typename T>
void save_cscv(std::ostream& out, const CscvMatrix<T>& m) {
  CscvBuilderAccess<T>::write(out, m);
}

template <typename T>
CscvMatrix<T> load_cscv(std::istream& in) {
  return CscvBuilderAccess<T>::read(in);
}

template <typename T>
void save_cscv_file(const std::string& path, const CscvMatrix<T>& m) {
  std::ofstream out(path, std::ios::binary);
  CSCV_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  save_cscv(out, m);
}

template <typename T>
CscvMatrix<T> load_cscv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CSCV_CHECK_MSG(in.is_open(), "cannot open " << path);
  return load_cscv<T>(in);
}

template void save_cscv<float>(std::ostream&, const CscvMatrix<float>&);
template void save_cscv<double>(std::ostream&, const CscvMatrix<double>&);
template CscvMatrix<float> load_cscv<float>(std::istream&);
template CscvMatrix<double> load_cscv<double>(std::istream&);
template void save_cscv_file<float>(const std::string&, const CscvMatrix<float>&);
template void save_cscv_file<double>(const std::string&, const CscvMatrix<double>&);
template CscvMatrix<float> load_cscv_file<float>(const std::string&);
template CscvMatrix<double> load_cscv_file<double>(const std::string&);

}  // namespace cscv::core
