// CSCV block kernels — the fully vectorized inner loops of Algorithm 3.
//
// Both kernels run one matrix block against the block-local output y~.
// Everything the SIMD unit touches is contiguous: a VxG is S_VxG * S_VVec
// consecutive values FMA'd onto S_VxG * S_VVec consecutive y~ slots. There
// is no gather, scatter, or index arithmetic inside the loops; S and V are
// compile-time so the compiler emits straight-line vector code (the paper's
// "compiler-assisted vectorization" claim — no intrinsics in the Z kernel).
//
// The kernel bodies live in kernels_body.inc so the multiversioned tier TU
// (core/kernels_isa.cpp, docs/DISPATCH.md) can compile an internal-linkage
// copy per ISA tier; including this header gives the ambient-flags build.
#pragma once

#include <cstdint>

#include "simd/expand.hpp"
#include "sparse/types.hpp"
#include "util/assertx.hpp"

namespace cscv::core::kernels {

// Hot-loop preconditions, debug builds only (the macro vanishes entirely
// under NDEBUG, so release codegen is untouched — the gbench cold/warm pair
// guards that). The y~ base must sit on an element boundary and every VxG
// start slot must lie on a CSCVE boundary (vxg_q % S == 0, the invariant
// the contiguous S_VxG*S_VVec FMA window relies on).
#ifdef NDEBUG
#define CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt) ((void)0)
#else
#define CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt)                      \
  do {                                                                             \
    CSCV_DCHECK((vxg_begin) >= 0 && (vxg_begin) <= (vxg_end));                     \
    CSCV_DCHECK(reinterpret_cast<std::uintptr_t>(yt) % alignof(T) == 0);           \
    for (sparse::offset_t cscv_g_ = (vxg_begin); cscv_g_ < (vxg_end); ++cscv_g_) { \
      CSCV_DCHECK((vxg_q)[cscv_g_] >= 0 && (vxg_q)[cscv_g_] % (S) == 0);           \
    }                                                                              \
  } while (0)
#endif

#include "core/kernels_body.inc"  // NOLINT(bugprone-suspicious-include)

}  // namespace cscv::core::kernels
