// CSCV block kernels — the fully vectorized inner loops of Algorithm 3.
//
// Both kernels run one matrix block against the block-local output y~.
// Everything the SIMD unit touches is contiguous: a VxG is S_VxG * S_VVec
// consecutive values FMA'd onto S_VxG * S_VVec consecutive y~ slots. There
// is no gather, scatter, or index arithmetic inside the loops; S and V are
// compile-time so the compiler emits straight-line vector code (the paper's
// "compiler-assisted vectorization" claim — no intrinsics in the Z kernel).
#pragma once

#include <cstdint>

#include "simd/expand.hpp"
#include "sparse/types.hpp"
#include "util/assertx.hpp"

namespace cscv::core::kernels {

// Hot-loop preconditions, debug builds only (the macro vanishes entirely
// under NDEBUG, so release codegen is untouched — the gbench cold/warm pair
// guards that). The y~ base must sit on an element boundary and every VxG
// start slot must lie on a CSCVE boundary (vxg_q % S == 0, the invariant
// the contiguous S_VxG*S_VVec FMA window relies on).
#ifdef NDEBUG
#define CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt) ((void)0)
#else
#define CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt)                      \
  do {                                                                             \
    CSCV_DCHECK((vxg_begin) >= 0 && (vxg_begin) <= (vxg_end));                     \
    CSCV_DCHECK(reinterpret_cast<std::uintptr_t>(yt) % alignof(T) == 0);           \
    for (sparse::offset_t cscv_g_ = (vxg_begin); cscv_g_ < (vxg_end); ++cscv_g_) { \
      CSCV_DCHECK((vxg_q)[cscv_g_] >= 0 && (vxg_q)[cscv_g_] % (S) == 0);           \
    }                                                                              \
  } while (0)
#endif

/// CSCV-Z: padding zeros are stored, the kernel is a pure FMA stream.
template <typename T, int S, int V>
inline void run_block_z(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                        const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                        const T* values, const T* x, T* __restrict yt) {
  CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt);
  const T* vals = values;
  for (sparse::offset_t g = vxg_begin; g < vxg_end; ++g) {
    const T xv = x[static_cast<std::size_t>(vxg_col[g])];
    T* dst = yt + vxg_q[g];
    for (int e = 0; e < V * S; ++e) {  // contiguous, compile-time length
      dst[e] += xv * vals[e];
    }
    vals += V * S;
  }
}

/// CSCV-M: padding removed; each CSCVE re-expands its packed values under a
/// lane mask (hardware vexpand+FMA when UseHw, soft-vexpand otherwise).
template <typename T, int S, int V, bool UseHw>
inline void run_block_m(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                        const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                        const T* packed, const std::uint16_t* masks, const T* x,
                        T* __restrict yt) {
  CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt);
  const T* p = packed;
  for (sparse::offset_t g = vxg_begin; g < vxg_end; ++g) {
    const T xv = x[static_cast<std::size_t>(vxg_col[g])];
    T* dst = yt + vxg_q[g];
    const std::uint16_t* m = masks + g * V;
    for (int e = 0; e < V; ++e) {
      p += simd::expand_fma<T, S, UseHw>(p, m[e], xv, dst + e * S);
    }
  }
}

/// Multi-RHS CSCV-Z: K interleaved right-hand sides advance per VxG. The
/// value is loaded once and FMA'd against K x entries — matrix traffic is
/// amortized K-fold (the multi-slice reconstruction case). y~ slots are
/// K-interleaved like x/y.
/// K > 0: compile-time RHS count (unrolled, vectorizable); K == 0 falls
/// back to the runtime `num_rhs` loop for unusual counts.
template <typename T, int S, int V, int K>
inline void run_block_z_multi(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                              const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                              const T* values, const T* x, int num_rhs,
                              T* __restrict yt) {
  CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt);
  if constexpr (K > 0) num_rhs = K;
  const T* vals = values;
  for (sparse::offset_t g = vxg_begin; g < vxg_end; ++g) {
    const T* xv = x + static_cast<std::size_t>(vxg_col[g]) * num_rhs;
    T* dst = yt + static_cast<std::size_t>(vxg_q[g]) * num_rhs;
    for (int e = 0; e < V * S; ++e) {
      const T v = vals[e];
      T* d = dst + static_cast<std::size_t>(e) * num_rhs;
      for (int k = 0; k < num_rhs; ++k) d[k] += v * xv[k];
    }
    vals += V * S;
  }
}

/// Multi-RHS CSCV-M: each CSCVE's packed values are first re-inflated into
/// a stack vector (hardware vexpand when available), then FMA'd K-wide —
/// padding lanes multiply by zero, keeping the K-loop branch-free and
/// vectorizable just like the Z kernel.
template <typename T, int S, int V, int K, bool UseHw>
inline void run_block_m_multi(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                              const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                              const T* packed, const std::uint16_t* masks, const T* x,
                              int num_rhs, T* __restrict yt) {
  CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt);
  if constexpr (K > 0) num_rhs = K;
  const T* p = packed;
  alignas(64) T dense[V * S];
  for (sparse::offset_t g = vxg_begin; g < vxg_end; ++g) {
    // Re-inflate the whole VxG once; the expansion cost amortizes over the
    // K right-hand sides, after which the loop is identical to the Z case.
    const std::uint16_t* m = masks + g * V;
    for (int e = 0; e < V; ++e) {
      p += simd::expand_any<T, S, UseHw>(p, m[e], dense + e * S);
    }
    const T* xv = x + static_cast<std::size_t>(vxg_col[g]) * num_rhs;
    T* dst = yt + static_cast<std::size_t>(vxg_q[g]) * num_rhs;
    for (int e = 0; e < V * S; ++e) {
      const T v = dense[e];
      T* d = dst + static_cast<std::size_t>(e) * num_rhs;
      for (int k = 0; k < num_rhs; ++k) d[k] += v * xv[k];
    }
  }
}

/// Transpose CSCV-Z: each VxG contracts V*S contiguous y~ slots with its
/// values into one x entry (x = A^T y, the backprojection direction).
template <typename T, int S, int V>
inline void run_block_z_transpose(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                                  const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                                  const T* values, const T* __restrict yt, T* x) {
  CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt);
  const T* vals = values;
  for (sparse::offset_t g = vxg_begin; g < vxg_end; ++g) {
    const T* src = yt + vxg_q[g];
    T acc = T(0);
    for (int e = 0; e < V * S; ++e) {  // contiguous reduction, fixed length
      acc += vals[e] * src[e];
    }
    x[static_cast<std::size_t>(vxg_col[g])] += acc;
    vals += V * S;
  }
}

/// Transpose CSCV-M: the packed values contract against the mask-selected
/// y~ lanes. UseHw re-inflates each VxG with the hardware vexpand and runs
/// the same fixed-length reduction as the Z path (dead lanes contribute
/// zero); the soft path walks the packed cursor lane by lane, which stays
/// portable off AVX-512.
template <typename T, int S, int V, bool UseHw = false>
inline void run_block_m_transpose(sparse::offset_t vxg_begin, sparse::offset_t vxg_end,
                                  const sparse::index_t* vxg_col, const std::int32_t* vxg_q,
                                  const T* packed, const std::uint16_t* masks,
                                  const T* __restrict yt, T* x) {
  CSCV_KERNEL_DCHECKS(S, vxg_begin, vxg_end, vxg_q, yt);
  const T* p = packed;
  if constexpr (UseHw) {
    alignas(64) T dense[V * S];
    for (sparse::offset_t g = vxg_begin; g < vxg_end; ++g) {
      const std::uint16_t* m = masks + g * V;
      for (int e = 0; e < V; ++e) {
        p += simd::expand_any<T, S, true>(p, m[e], dense + e * S);
      }
      const T* src = yt + vxg_q[g];
      T acc = T(0);
      for (int e = 0; e < V * S; ++e) acc += dense[e] * src[e];
      x[static_cast<std::size_t>(vxg_col[g])] += acc;
    }
  } else {
    for (sparse::offset_t g = vxg_begin; g < vxg_end; ++g) {
      const T* src = yt + vxg_q[g];
      const std::uint16_t* m = masks + g * V;
      T acc = T(0);
      for (int e = 0; e < V; ++e) {
        const std::uint32_t mask = m[e];
        for (int l = 0; l < S; ++l) {
          if (mask & (1u << l)) acc += *p++ * src[e * S + l];
        }
      }
      x[static_cast<std::size_t>(vxg_col[g])] += acc;
    }
  }
}

}  // namespace cscv::core::kernels
