// Structural invariant verifier for CscvMatrix / SpmvPlan.
//
// CSCV's correctness rests on invariants the paper states but the kernels
// never re-check: every CSCVE addresses S_VVec contiguous slots of the
// IOBLR-reordered block output, the IOBLR slot->row map is injective per
// block, VxG index pairs stay inside the block's y~ window, and CSCV-M
// bitmask popcounts account for exactly the stored nonzeros. A malformed
// matrix — a builder bug, a corrupted .cscv blob, a bad autotune parameter
// — otherwise surfaces only as silently-wrong sinograms far downstream.
//
// verify() walks the format and reports every violated invariant by name.
// It is wired in at three points:
//   * builder.cpp runs a full verify after construction in debug builds
//     (the CSCV_DCHECK tier: free in release, exhaustive under test);
//   * load_cscv runs a mandatory cheap verify on every deserialize, after
//     the header/size validation hardened against untrusted files;
//   * `cscv_cli verify <file>` prints a VerifyReport (table or JSON) and
//     exits nonzero when any invariant fails.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/format.hpp"
#include "util/json.hpp"

namespace cscv::core {

/// How much of the format a verify() call walks. kCheap and kFull stay
/// exact for every dtype (they check structure, not arithmetic); kEpsilon
/// additionally audits the precision header — the sparsify certificate
/// (every stored nonzero of a sparsified matrix has |v| >= eps) and the
/// sanity of the eps / error-bound fields (docs/PRECISION.md).
enum class VerifyLevel {
  kCheap,    // O(blocks + VxGs): header/table consistency, index bounds
  kFull,     // adds O(nnz + slots): IOBLR injectivity, mask/value accounting
  kEpsilon,  // adds O(stored values): sparsify-certificate + precision header
};

/// One violated invariant. `invariant` is a stable dotted name (the names
/// are enumerated in docs/FORMAT.md section 8); `detail` says where and by
/// how much.
struct VerifyIssue {
  std::string invariant;
  std::string detail;
};

/// Result of a verify() walk. Issue storage is capped (kMaxIssues) so a
/// thoroughly corrupted matrix cannot allocate without bound; the total
/// violation count keeps counting past the cap.
struct VerifyReport {
  static constexpr std::size_t kMaxIssues = 64;

  VerifyLevel level = VerifyLevel::kCheap;
  std::vector<VerifyIssue> issues;
  std::uint64_t total_violations = 0;  // includes issues dropped by the cap

  // Coverage counters, so a clean report shows what was actually walked.
  std::uint64_t blocks_checked = 0;
  std::uint64_t vxgs_checked = 0;
  std::uint64_t slots_checked = 0;    // full level: live y~ slots walked
  std::uint64_t values_nonzero = 0;   // full level: nonzero stored values

  [[nodiscard]] bool ok() const { return total_violations == 0; }
  void add(std::string invariant, std::string detail);

  /// One-line human summary ("ok" or "N invariant(s) violated: first ...").
  [[nodiscard]] std::string summary() const;
  /// Machine-readable form (the CLI's --json output).
  [[nodiscard]] util::Json to_json() const;
  /// Throws util::CheckError listing the leading issues when !ok().
  void require_ok(const std::string& context) const;
};

/// Checks every structural invariant of `m` (see docs/FORMAT.md section 8).
/// Never throws on a malformed matrix — violations land in the report.
template <typename T>
[[nodiscard]] VerifyReport verify(const CscvMatrix<T>& m,
                                  VerifyLevel level = VerifyLevel::kFull);

/// Verifies a plan: the underlying matrix (at `level`) plus the partition
/// and scratch invariants of the plan itself (work accounting covers all
/// VxGs, scratch fits the largest block, stats agree with the matrix).
template <typename T>
[[nodiscard]] VerifyReport verify(const SpmvPlan<T>& plan,
                                  VerifyLevel level = VerifyLevel::kFull);

extern template VerifyReport verify<float>(const CscvMatrix<float>&, VerifyLevel);
extern template VerifyReport verify<double>(const CscvMatrix<double>&, VerifyLevel);
extern template VerifyReport verify<float>(const SpmvPlan<float>&, VerifyLevel);
extern template VerifyReport verify<double>(const SpmvPlan<double>&, VerifyLevel);

}  // namespace cscv::core
