// Per-tier kernel entry points (internal). Each compiled instance of
// core/kernels_isa.cpp defines these four functions in the namespace named
// by its CSCV_TIER_NS compile definition; core/dispatch.cpp references the
// namespaces the build actually linked to assemble the tier registry.
// Declaring a tier here does not require it to be compiled — an unreferenced
// declaration is harmless.
#pragma once

#include "core/dispatch.hpp"

namespace cscv::core::dispatch {

#define CSCV_DECLARE_KERNEL_TIER(ns)                                              \
  namespace ns { /* NOLINT(bugprone-macro-parentheses) — ns is a namespace id */  \
  KernelSet<float> resolve_f(bool is_m, int s_vvec, int s_vxg, bool use_hw,       \
                             int num_rhs, ValueType value_type);                  \
  KernelSet<double> resolve_d(bool is_m, int s_vvec, int s_vxg, bool use_hw,      \
                              int num_rhs, ValueType value_type);                 \
  bool hw_expand(bool is_double, int s_vvec);                                     \
  int compiled_tier();                                                            \
  }

CSCV_DECLARE_KERNEL_TIER(tier_generic)
CSCV_DECLARE_KERNEL_TIER(tier_avx2)
CSCV_DECLARE_KERNEL_TIER(tier_avx512)

#undef CSCV_DECLARE_KERNEL_TIER

}  // namespace cscv::core::dispatch
