// Invariant walks behind core::verify (see verify.hpp and docs/FORMAT.md §8).
#include "core/verify.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <type_traits>

#include "core/plan.hpp"
#include "util/assertx.hpp"

namespace cscv::core {

void VerifyReport::add(std::string invariant, std::string detail) {
  ++total_violations;
  if (issues.size() < kMaxIssues) {
    issues.push_back({std::move(invariant), std::move(detail)});
  }
}

std::string VerifyReport::summary() const {
  if (ok()) {
    std::ostringstream os;
    os << "ok (" << blocks_checked << " blocks, " << vxgs_checked << " VxGs";
    if (level != VerifyLevel::kCheap) os << ", " << slots_checked << " live slots";
    os << " checked)";
    return os.str();
  }
  std::ostringstream os;
  os << total_violations << " invariant violation" << (total_violations == 1 ? "" : "s");
  if (!issues.empty()) {
    os << ": [" << issues.front().invariant << "] " << issues.front().detail;
    if (total_violations > 1) os << " (+" << total_violations - 1 << " more)";
  }
  return os.str();
}

util::Json VerifyReport::to_json() const {
  util::Json j = util::Json::object();
  j["ok"] = ok();
  j["level"] = level == VerifyLevel::kCheap ? "cheap"
               : level == VerifyLevel::kFull ? "full"
                                             : "epsilon";
  j["total_violations"] = total_violations;
  util::Json list = util::Json::array();
  for (const VerifyIssue& issue : issues) {
    util::Json item = util::Json::object();
    item["invariant"] = issue.invariant;
    item["detail"] = issue.detail;
    list.push_back(std::move(item));
  }
  j["issues"] = std::move(list);
  j["blocks_checked"] = blocks_checked;
  j["vxgs_checked"] = vxgs_checked;
  j["slots_checked"] = slots_checked;
  j["values_nonzero"] = values_nonzero;
  return j;
}

void VerifyReport::require_ok(const std::string& context) const {
  if (ok()) return;
  std::ostringstream os;
  os << context << ": " << summary();
  for (std::size_t i = 1; i < std::min<std::size_t>(issues.size(), 4); ++i) {
    os << "; [" << issues[i].invariant << "] " << issues[i].detail;
  }
  throw util::CheckError(os.str());
}

namespace {

using sparse::index_t;
using sparse::offset_t;

/// Formats "<what> of block <b>" style details without dragging iostreams
/// through every call site.
template <typename... Parts>
std::string detail(Parts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Cheap tier: header/table consistency and index bounds. Returns true when
/// the tables are internally consistent enough for the full tier to index
/// them without going out of bounds itself.
template <typename T>
bool verify_tables(const CscvMatrix<T>& m, VerifyReport& r) {
  // Parameter and layout domains; everything else derives from these, so a
  // violation here ends the walk.
  try {
    m.params().validate();
  } catch (const util::CheckError& e) {
    r.add("params.valid", e.what());
    return false;
  }
  try {
    m.layout().validate();
  } catch (const util::CheckError& e) {
    r.add("layout.valid", e.what());
    return false;
  }

  const int s = m.params().s_vvec;
  const int v = m.params().s_vxg;
  const OperatorLayout& layout = m.layout();

  const BlockGrid want(layout, s, m.params().s_imgb);
  if (m.grid().view_groups != want.view_groups || m.grid().tiles_x != want.tiles_x ||
      m.grid().tiles_y != want.tiles_y || m.grid().s_vvec != want.s_vvec ||
      m.grid().s_imgb != want.s_imgb) {
    r.add("grid.shape", detail("stored grid disagrees with BlockGrid(layout, ",
                               s, ", ", m.params().s_imgb, ")"));
    return false;
  }

  if (m.nnz() < 0 ||
      m.nnz() > static_cast<offset_t>(layout.num_rows()) * layout.num_cols()) {
    r.add("nnz.range", detail("nnz = ", m.nnz(), " outside [0, rows*cols]"));
    return false;
  }

  bool ok = true;
  const auto blocks = m.blocks();
  if (static_cast<int>(blocks.size()) != want.num_blocks()) {
    r.add("block_table.size",
          detail(blocks.size(), " blocks stored, grid has ", want.num_blocks()));
    return false;
  }
  if (m.reference_bins().size() != blocks.size() * static_cast<std::size_t>(s)) {
    r.add("refs.size", detail(m.reference_bins().size(), " reference bins stored, want ",
                              blocks.size() * static_cast<std::size_t>(s)));
    return false;
  }
  if (m.vxg_col().size() != m.vxg_q().size()) {
    r.add("vxg.index_sizes", detail("vxg_col has ", m.vxg_col().size(),
                                    " entries, vxg_q has ", m.vxg_q().size()));
    return false;
  }

  // Precision header: the dtype tag must be a concrete storable dtype
  // (reduced only on float matrices) and the sparsify fields finite.
  const ValueType vt = m.value_type();
  if (vt != ValueType::kF32 && !value_type_is_reduced(vt)) {
    r.add("precision.dtype", detail("stored value dtype tag ", static_cast<int>(vt),
                                    " is not a concrete dtype"));
    return false;
  }
  if (value_type_is_reduced(vt) && !std::is_same_v<T, float>) {
    r.add("precision.dtype", detail("reduced dtype ", value_type_name(vt),
                                    " on a non-float matrix"));
    return false;
  }
  if (!std::isfinite(m.sparsify_eps()) || m.sparsify_eps() < 0.0 ||
      !std::isfinite(m.sparsify_error_bound()) || m.sparsify_error_bound() < 0.0) {
    r.add("precision.header", detail("sparsify eps ", m.sparsify_eps(), " / error bound ",
                                     m.sparsify_error_bound(),
                                     " must be finite and non-negative"));
    ok = false;
  }

  // Storage arrays sized for the variant; exactly one value array (per the
  // dtype tag) is populated.
  const auto num_vxgs = static_cast<std::size_t>(m.num_vxgs());
  const std::size_t stored = vt == ValueType::kF32 ? m.values().size()
                                                   : m.values_u16().size();
  const std::size_t other = vt == ValueType::kF32 ? m.values_u16().size()
                                                  : m.values().size();
  if (other != 0) {
    r.add("storage.sizes", detail("matrix tagged ", value_type_name(vt), " also carries ",
                                  other, " slots of the other value array"));
    ok = false;
  }
  if (m.variant() == CscvMatrix<T>::Variant::kZ) {
    if (stored != num_vxgs * static_cast<std::size_t>(v) * s) {
      r.add("storage.sizes", detail("kZ values array has ", stored,
                                    " slots, want num_vxgs*S_VxG*S_VVec = ",
                                    num_vxgs * static_cast<std::size_t>(v) * s));
      ok = false;
    }
    if (!m.masks().empty()) {
      r.add("storage.sizes", detail("kZ matrix carries ", m.masks().size(), " masks"));
      ok = false;
    }
  } else {
    // kM over-allocates one vector of zero slack for branch-free expanders.
    if (stored != static_cast<std::size_t>(m.nnz()) + s) {
      r.add("storage.sizes", detail("kM values array has ", stored,
                                    " slots, want nnz + S_VVec = ",
                                    static_cast<std::size_t>(m.nnz()) + s));
      ok = false;
    }
    if (m.masks().size() != num_vxgs * static_cast<std::size_t>(v)) {
      r.add("storage.sizes", detail("kM mask array has ", m.masks().size(),
                                    " entries, want num_vxgs*S_VxG = ",
                                    num_vxgs * static_cast<std::size_t>(v)));
      ok = false;
    }
  }
  if (!ok) return false;

  // Per-block table invariants: coordinates match the block id, VxG ranges
  // tile [0, num_vxgs) contiguously, o_count covers the VxG chunking, and
  // the value cursor advances consistently with the variant.
  offset_t vxg_cursor = 0;
  offset_t val_cursor = 0;
  std::size_t max_slots = 0;
  for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
    const auto& info = blocks[static_cast<std::size_t>(b)];
    ++r.blocks_checked;
    if (info.view_group != m.grid().group_of(b) || info.tile_y != m.grid().tile_y_of(b) ||
        info.tile_x != m.grid().tile_x_of(b)) {
      r.add("block.coords", detail("block ", b, " stores (g,ty,tx) = (", info.view_group,
                                   ",", info.tile_y, ",", info.tile_x,
                                   "), id decodes to (", m.grid().group_of(b), ",",
                                   m.grid().tile_y_of(b), ",", m.grid().tile_x_of(b), ")"));
      ok = false;
    }
    if (info.vxg_begin != vxg_cursor || info.vxg_end < info.vxg_begin) {
      r.add("block.vxg_contiguous",
            detail("block ", b, " VxG range [", info.vxg_begin, ", ", info.vxg_end,
                   ") does not continue at cursor ", vxg_cursor));
      ok = false;
      return ok;  // downstream ranges are meaningless now
    }
    vxg_cursor = info.vxg_end;
    const bool empty = info.vxg_begin == info.vxg_end;
    if (info.o_count < 0 || (empty && info.o_count != 0) ||
        (!empty && info.o_count < v)) {
      r.add("block.o_count", detail("block ", b, " has o_count = ", info.o_count,
                                    " for ", info.vxg_end - info.vxg_begin, " VxGs"));
      ok = false;
    }
    const std::size_t slots = static_cast<std::size_t>(std::max(info.o_count, 0)) * s;
    max_slots = std::max(max_slots, slots);
    if (slots > m.ytilde_max_slots()) {
      r.add("block.ytilde_bound",
            detail("block ", b, " needs ", slots, " y~ slots, matrix advertises ",
                   m.ytilde_max_slots()));
      ok = false;
    }
    if (m.variant() == CscvMatrix<T>::Variant::kZ) {
      if (info.val_begin != info.vxg_begin * v * s) {
        r.add("block.val_begin", detail("block ", b, " kZ val_begin = ", info.val_begin,
                                        ", want vxg_begin*S_VxG*S_VVec = ",
                                        info.vxg_begin * v * s));
        ok = false;
      }
    } else {
      if (info.val_begin < val_cursor || info.val_begin > m.nnz()) {
        r.add("block.val_cursor", detail("block ", b, " kM val_begin = ", info.val_begin,
                                         " not monotone in [", val_cursor, ", ", m.nnz(),
                                         "]"));
        ok = false;
      }
      val_cursor = std::max(val_cursor, info.val_begin);
    }
  }
  if (vxg_cursor != m.num_vxgs()) {
    r.add("block.vxg_contiguous", detail("block table covers ", vxg_cursor,
                                         " VxGs, index arrays hold ", m.num_vxgs()));
    ok = false;
  }
  if (max_slots != m.ytilde_max_slots()) {
    r.add("ytilde.max_slots", detail("largest block needs ", max_slots,
                                     " y~ slots, matrix advertises ",
                                     m.ytilde_max_slots()));
    ok = false;
  }

  // Reference bins must lie on the detector (dead lanes store 0, in range).
  const auto refs = m.reference_bins();
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (refs[i] < 0 || refs[i] >= layout.num_bins) {
      r.add("refs.range", detail("reference bin ", refs[i], " of block ", i / s,
                                 " lane ", i % s, " off the detector"));
      ok = false;
    }
  }
  if (!ok) return false;

  // Per-VxG index bounds, with the owning block as context: the column must
  // be a pixel of the block's image tile (IOBLR groups by tile), and the
  // start slot must keep the whole S_VxG*S_VVec window inside block y~.
  for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
    const auto& info = blocks[static_cast<std::size_t>(b)];
    const int px0 = info.tile_x * m.params().s_imgb;
    const int py0 = info.tile_y * m.params().s_imgb;
    const int px1 = std::min(px0 + m.params().s_imgb, layout.image_size);
    const int py1 = std::min(py0 + m.params().s_imgb, layout.image_size);
    for (offset_t g = info.vxg_begin; g < info.vxg_end; ++g) {
      ++r.vxgs_checked;
      const index_t col = m.vxg_col()[static_cast<std::size_t>(g)];
      if (col < 0 || col >= layout.num_cols()) {
        r.add("vxg.column_range", detail("VxG ", g, " column ", col, " outside [0, ",
                                         layout.num_cols(), ")"));
        ok = false;
        continue;
      }
      const int px = layout.px_of_col(col);
      const int py = layout.py_of_col(col);
      if (px < px0 || px >= px1 || py < py0 || py >= py1) {
        r.add("vxg.column_in_tile",
              detail("VxG ", g, " column ", col, " = pixel (", px, ",", py,
                     ") outside tile [", px0, ",", px1, ")x[", py0, ",", py1,
                     ") of block ", b));
        ok = false;
      }
      const std::int32_t q = m.vxg_q()[static_cast<std::size_t>(g)];
      if (q < 0 || q % s != 0 ||
          static_cast<std::size_t>(q) + static_cast<std::size_t>(v) * s >
              static_cast<std::size_t>(info.o_count) * s) {
        r.add("vxg.q_bounds",
              detail("VxG ", g, " start slot ", q, " (block ", b, ", o_count ",
                     info.o_count, ") breaks 0 <= q, q % S_VVec == 0, q + S_VxG*S_VVec",
                     " <= o_count*S_VVec"));
        ok = false;
      }
    }
  }
  return ok;
}

/// Full tier: IOBLR slot->row injectivity, CSCV-M popcount accounting, and
/// CSCV-Z dead-slot scanning. Assumes verify_tables returned true (so every
/// table index below is in bounds).
template <typename T>
void verify_contents(const CscvMatrix<T>& m, VerifyReport& r) {
  const int s = m.params().s_vvec;
  const int v = m.params().s_vxg;
  const OperatorLayout& layout = m.layout();
  const auto blocks = m.blocks();
  const auto refs = m.reference_bins();

  // ---- IOBLR injectivity ------------------------------------------------
  // Live slots of one block must map to pairwise-distinct matrix rows (the
  // paper's iota_k is a bijection onto the rows it covers); a collision
  // would double-count a sinogram entry in scatter and drop one in gather.
  std::vector<index_t> rows;
  for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
    const auto& info = blocks[static_cast<std::size_t>(b)];
    if (info.o_count == 0) continue;
    const int v0 = m.grid().first_view(info.view_group);
    const int s_eff = std::min(s, layout.num_views - v0);
    rows.clear();
    for (int vi = 0; vi < s_eff; ++vi) {
      const index_t ref = refs[static_cast<std::size_t>(b) * s + vi];
      for (int o = 0; o < info.o_count; ++o) {
        const int bin = ref + info.o_min + o;
        if (bin < 0 || bin >= layout.num_bins) continue;  // dead slot
        rows.push_back(layout.row_of(v0 + vi, bin));
        ++r.slots_checked;
      }
    }
    std::sort(rows.begin(), rows.end());
    if (std::adjacent_find(rows.begin(), rows.end()) != rows.end()) {
      r.add("ioblr.injective",
            detail("block ", b, " maps two live y~ slots to matrix row ",
                   *std::adjacent_find(rows.begin(), rows.end())));
    }
    if (!rows.empty() && (rows.front() < 0 || rows.back() >= layout.num_rows())) {
      r.add("ioblr.row_range", detail("block ", b, " live slots cover rows [",
                                      rows.front(), ", ", rows.back(),
                                      "], matrix has ", layout.num_rows()));
    }
  }

  if (m.variant() == CscvMatrix<T>::Variant::kM) {
    // ---- CSCV-M mask accounting ----------------------------------------
    // The packed-value cursor is implicit: kernels advance it by popcount.
    // Verify the advertised per-block cursors and the grand total against
    // the masks, and that no mask addresses lanes past S_VVec.
    const std::uint32_t lane_mask = (1u << s) - 1u;
    offset_t cursor = 0;
    for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
      const auto& info = blocks[static_cast<std::size_t>(b)];
      if (info.val_begin != cursor) {
        r.add("mask.val_cursor",
              detail("block ", b, " val_begin = ", info.val_begin,
                     ", mask popcounts place the packed cursor at ", cursor));
        cursor = info.val_begin;  // resynchronize to localize later reports
      }
      for (offset_t g = info.vxg_begin; g < info.vxg_end; ++g) {
        for (int e = 0; e < v; ++e) {
          const std::uint16_t mask = m.masks()[static_cast<std::size_t>(g * v + e)];
          if ((mask & ~lane_mask) != 0) {
            r.add("mask.high_bits", detail("CSCVE ", g * v + e, " mask ", mask,
                                           " addresses lanes past S_VVec = ", s));
          }
          cursor += std::popcount(static_cast<std::uint32_t>(mask & lane_mask));
        }
      }
    }
    r.values_nonzero = static_cast<std::uint64_t>(std::max<offset_t>(cursor, 0));
    if (cursor != m.nnz()) {
      r.add("mask.popcount_total", detail("mask popcounts sum to ", cursor,
                                          ", matrix stores nnz = ", m.nnz()));
    }
  } else {
    // ---- CSCV-Z padding accounting -------------------------------------
    // Stored nonzeros can never exceed nnz(A), and a nonzero value must sit
    // in a live slot — padding and dead lanes are zero by construction, so
    // a nonzero there means the offset/reference data no longer matches the
    // values (exactly the unlocalizable corruption this verifier exists
    // for).
    for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
      const auto& info = blocks[static_cast<std::size_t>(b)];
      const int v0 = m.grid().first_view(info.view_group);
      const int s_eff = std::min(s, layout.num_views - v0);
      for (offset_t g = info.vxg_begin; g < info.vxg_end; ++g) {
        const std::int32_t q = m.vxg_q()[static_cast<std::size_t>(g)];
        for (int e = 0; e < v; ++e) {
          for (int l = 0; l < s; ++l) {
            if (m.stored_value(g * v * s + e * s + l) == T(0)) continue;
            ++r.values_nonzero;
            const int o_idx = q / s + e;
            const int bin = refs[static_cast<std::size_t>(b) * s + l] + info.o_min + o_idx;
            if (l >= s_eff || bin < 0 || bin >= layout.num_bins) {
              r.add("values.dead_slot",
                    detail("VxG ", g, " CSCVE ", e, " lane ", l,
                           " holds a nonzero in a dead slot (block ", b, ", bin ", bin,
                           ")"));
            }
          }
        }
      }
    }
    if (r.values_nonzero > static_cast<std::uint64_t>(m.nnz())) {
      r.add("values.nonzero_count", detail("kZ stores ", r.values_nonzero,
                                           " nonzero values, matrix advertises nnz = ",
                                           m.nnz()));
    }
  }
}

/// Epsilon tier: the sparsification certificate. A sparsified matrix
/// promises every surviving stored nonzero has |v| >= eps — that is what
/// makes the stored error bound a certificate rather than a log line. The
/// walk sees widened stored values, and narrowing to a reduced dtype may
/// round a kept value just below eps, so the threshold is relaxed by that
/// dtype's worst-case rounding (relative unit roundoff plus half the
/// smallest subnormal): survivors certify against eps as *converted*
/// values, not as the exact fp32 values sparsify saw.
template <typename T>
void verify_epsilon(const CscvMatrix<T>& m, VerifyReport& r) {
  double eps = m.sparsify_eps();
  if (eps <= 0.0) return;  // never sparsified: nothing was certified
  switch (m.value_type()) {
    case ValueType::kBf16: eps -= eps * 0x1p-8 + 0x1p-133; break;
    case ValueType::kF16: eps -= eps * 0x1p-11 + 0x1p-25; break;
    default: break;
  }
  const int s = m.params().s_vvec;
  const int v = m.params().s_vxg;
  if (m.variant() == CscvMatrix<T>::Variant::kM) {
    for (offset_t i = 0; i < m.nnz(); ++i) {
      const double val = std::abs(static_cast<double>(m.stored_value(i)));
      if (val < eps) {
        r.add("sparsify.certificate",
              detail("packed value ", i, " has |v| = ", val,
                     " below the certified eps ", eps));
      }
    }
  } else {
    const offset_t total = static_cast<offset_t>(m.num_vxgs()) * v * s;
    for (offset_t i = 0; i < total; ++i) {
      const T stored = m.stored_value(i);
      if (stored == T(0)) continue;
      const double val = std::abs(static_cast<double>(stored));
      if (val < eps) {
        r.add("sparsify.certificate",
              detail("kZ slot ", i, " has nonzero |v| = ", val,
                     " below the certified eps ", eps));
      }
    }
  }
}

}  // namespace

template <typename T>
VerifyReport verify(const CscvMatrix<T>& m, VerifyLevel level) {
  VerifyReport r;
  r.level = level;
  const bool tables_ok = verify_tables(m, r);
  // The deeper tiers index the tables they walk; skip them when the cheap
  // tier already found the tables inconsistent (the report says why).
  if (level != VerifyLevel::kCheap && tables_ok) verify_contents(m, r);
  if (level == VerifyLevel::kEpsilon && tables_ok) verify_epsilon(m, r);
  return r;
}

template <typename T>
VerifyReport verify(const SpmvPlan<T>& plan, VerifyLevel level) {
  VerifyReport r;
  if (plan.matrix() == nullptr) {
    r.level = level;
    r.add("plan.matrix", "plan holds no matrix");
    return r;
  }
  const CscvMatrix<T>& m = *plan.matrix();
  r = verify(m, level);

  if (plan.threads() < 1) {
    r.add("plan.threads", detail("plan built for ", plan.threads(), " partition slots"));
  }
  if (plan.num_rhs() < 1) {
    r.add("plan.num_rhs", detail("plan built for ", plan.num_rhs(), " right-hand sides"));
  }
  const auto work = plan.work_per_slot();
  if (static_cast<int>(work.size()) != plan.threads()) {
    r.add("plan.work_slots", detail(work.size(), " work slots for ", plan.threads(),
                                    " partition slots"));
  }
  std::uint64_t total = 0;
  for (std::uint64_t w : work) total += w;
  if (total != static_cast<std::uint64_t>(m.num_vxgs())) {
    r.add("plan.work_total", detail("partition accounts for ", total, " VxGs, matrix has ",
                                    m.num_vxgs()));
  }
  // Each partition slot owns one aligned y~ stripe able to hold the largest
  // block (times num_rhs); the private-y reduction pool only adds to this.
  const std::uint64_t need = static_cast<std::uint64_t>(plan.threads()) *
                             static_cast<std::uint64_t>(m.ytilde_max_slots()) *
                             static_cast<std::uint64_t>(plan.num_rhs()) * sizeof(T);
  if (plan.scratch_bytes() < need) {
    r.add("plan.scratch_bound", detail("plan scratch is ", plan.scratch_bytes(),
                                       " bytes, largest block needs ", need));
  }
  const PlanStats stats = plan.stats();
  if (stats.nnz != static_cast<std::uint64_t>(m.nnz()) ||
      stats.num_vxgs != static_cast<std::uint64_t>(m.num_vxgs()) ||
      stats.padded_values != static_cast<std::uint64_t>(m.padded_values())) {
    r.add("plan.stats_consistent",
          detail("PlanStats (nnz ", stats.nnz, ", vxgs ", stats.num_vxgs, ", padded ",
                 stats.padded_values, ") disagrees with the matrix (", m.nnz(), ", ",
                 m.num_vxgs(), ", ", m.padded_values(), ")"));
  }
  if (total > 0 && stats.load_imbalance < 1.0) {
    r.add("plan.load_imbalance",
          detail("max/mean work ratio ", stats.load_imbalance, " below 1"));
  }
  return r;
}

template VerifyReport verify<float>(const CscvMatrix<float>&, VerifyLevel);
template VerifyReport verify<double>(const CscvMatrix<double>&, VerifyLevel);
template VerifyReport verify<float>(const SpmvPlan<float>&, VerifyLevel);
template VerifyReport verify<double>(const SpmvPlan<double>&, VerifyLevel);

}  // namespace cscv::core
