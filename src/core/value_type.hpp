// Storage dtype of CSCV values (docs/PRECISION.md).
//
// CSCV matrices always COMPUTE in their arithmetic type T (the template
// parameter of CscvMatrix): every FMA chain accumulates in T exactly as the
// fp32 kernels do. The ValueType tag only selects how values are *stored*:
// reduced dtypes (float matrices only) keep each value in 16 bits and the
// kernels widen on load, halving the matrix bytes streamed per apply — the
// dominant cost of the bandwidth-bound CSCV-M path.
#pragma once

#include <cstddef>
#include <string>

#include "util/assertx.hpp"

namespace cscv::core {

enum class ValueType : int {
  kAuto = -1,  // PlanOptions only: follow the matrix's stored dtype
  kF32 = 0,    // values stored in the matrix's arithmetic type T
  kBf16 = 1,   // bfloat16 storage, fp32 accumulate (float matrices only)
  kF16 = 2,    // IEEE binary16 storage, fp32 accumulate (float matrices only)
};

/// Number of concrete (storable) dtypes; kAuto is a request, not storage.
inline constexpr int kNumValueTypes = 3;

[[nodiscard]] inline constexpr bool value_type_is_reduced(ValueType t) {
  return t == ValueType::kBf16 || t == ValueType::kF16;
}

/// Bytes per stored value. For kF32 the value element is the matrix's
/// arithmetic type, so callers that can see T should use sizeof(T) there;
/// this helper covers the float-matrix case every reduced dtype implies.
[[nodiscard]] inline constexpr std::size_t bytes_per_value(ValueType t,
                                                           std::size_t sizeof_t = 4) {
  return t == ValueType::kF32 ? sizeof_t : 2;
}

inline std::string value_type_name(ValueType t) {
  switch (t) {
    case ValueType::kAuto: return "auto";
    case ValueType::kF32: return "fp32";
    case ValueType::kBf16: return "bf16";
    case ValueType::kF16: return "fp16";
  }
  return "?";
}

/// Inverse of value_type_name; CheckError on unknown names (the service wire
/// format and the CLI parse these from untrusted input).
inline ValueType value_type_from_name(const std::string& name) {
  if (name == "auto") return ValueType::kAuto;
  if (name == "fp32") return ValueType::kF32;
  if (name == "bf16") return ValueType::kBf16;
  if (name == "fp16") return ValueType::kF16;
  CSCV_CHECK_MSG(false,
                 "unknown value type \"" << name << "\" (want auto|fp32|bf16|fp16)");
  return ValueType::kF32;  // unreachable
}

}  // namespace cscv::core
