// CscvMatrix — the paper's Compressed Sparse Column Vector format.
//
// Structure (Section IV):
//   * The matrix is cut into blocks: a view group of S_VVec consecutive
//     views x an S_ImgB x S_ImgB pixel tile.
//   * Per block, IOBLR re-indexes the touched sinogram entries by
//     (bin offset o from the reference trajectory, view lane vi); the local
//     output vector y~ has o_count * S_VVec contiguous slots.
//   * A CSCVE is one offset row of y~ for one column: S_VVec values (some
//     padding zeros) that FMA against S_VVec contiguous y~ slots.
//   * A VxG concatenates S_VxG CSCVEs of one column at consecutive offsets,
//     so one index pair (column, start slot) covers S_VxG * S_VVec values.
//
// Two storage variants:
//   * kZ — padding zeros stored in-line; lowest instruction count.
//   * kM — padding removed; values packed, one S_VVec-bit mask per CSCVE,
//     re-expanded in the kernel via vexpand / soft-vexpand; lowest traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>

#include "core/layout.hpp"
#include "core/params.hpp"
#include "core/value_type.hpp"
#include "simd/expand.hpp"
#include "simd/isa.hpp"
#include "sparse/csc.hpp"
#include "sparse/types.hpp"
#include "util/aligned_vector.hpp"
#include "util/sync.hpp"

namespace cscv::core {

namespace dispatch {
template <typename T>
struct KernelSet;
}  // namespace dispatch

/// Thread-level scheduling of the block loop (Section IV-E).
enum class ThreadScheme {
  kAuto,          // row partition when view groups >= threads, else copies
  kRowPartition,  // threads own whole view groups; scatter straight into y
  kPrivateY,      // threads split blocks; private y copies + reduction
};

template <typename T>
class SpmvPlan;

/// Configuration an SpmvPlan is built for. A plan resolves these once;
/// changing any of them (including the ambient thread count when `threads`
/// is 0) requires a new plan — CscvMatrix::plan() handles that transparently.
struct PlanOptions {
  ThreadScheme scheme = ThreadScheme::kAuto;
  simd::ExpandPath path = simd::ExpandPath::kAuto;
  int num_rhs = 1;  // interleaved right-hand sides (1 = plain SpMV)
  int threads = 0;  // partition slots; 0 = util::max_threads() at build time
  // Kernel ISA tier (docs/DISPATCH.md). kAuto honors CSCV_FORCE_ISA, then
  // picks the best registered tier for this CPU; a concrete tier pins the
  // plan to it (clamped to what the binary carries — see PlanStats).
  simd::IsaTier isa = simd::IsaTier::kAuto;
  // Value storage dtype the plan expects (docs/PRECISION.md). kAuto follows
  // whatever the matrix stores; a concrete dtype asserts it — a mismatch is
  // a CheckError, because a plan cannot convert storage (use
  // CscvMatrix::convert_values() for that).
  ValueType value_type = ValueType::kAuto;

  friend bool operator==(const PlanOptions&, const PlanOptions&) = default;
};

/// What sparsify() dropped and the certificate it computed. The bound is
/// per-row: for every output row i, |(A_sparse x)_i - (A x)_i| <=
/// row_l1_dropped(i) * max_j|x_j|; max_row_l1 is the max over rows and is
/// stored in the matrix header (docs/PRECISION.md).
struct SparsifyReport {
  double eps = 0.0;
  std::uint64_t dropped = 0;     // entries removed (kM) or zeroed (kZ)
  std::uint64_t kept = 0;        // nonzeros remaining
  double dropped_mass = 0.0;     // total |v| over dropped entries
  double max_row_l1 = 0.0;       // the certified per-row l1 bound
};

template <typename T>
class CscvMatrix {
 public:
  enum class Variant { kZ, kM };

  /// Descriptor of one matrix block. o_min may be negative (bins left of
  /// the reference trajectory); o_count includes slack offsets introduced
  /// by VxG chunking (Fig. 6's red groups).
  struct BlockInfo {
    std::int32_t view_group = 0;
    std::int32_t tile_x = 0;
    std::int32_t tile_y = 0;
    std::int32_t o_min = 0;
    std::int32_t o_count = 0;
    sparse::offset_t vxg_begin = 0;
    sparse::offset_t vxg_end = 0;
    sparse::offset_t val_begin = 0;  // into values_ (packed cursor for kM)
  };

  CscvMatrix() = default;

  /// Converts a CSC matrix with integral-operator row/column semantics.
  static CscvMatrix build(const sparse::CscMatrix<T>& a, const OperatorLayout& layout,
                          const CscvParams& params, Variant variant);

  // ---- shape and format statistics ------------------------------------
  [[nodiscard]] Variant variant() const { return variant_; }
  [[nodiscard]] const CscvParams& params() const { return params_; }
  [[nodiscard]] const OperatorLayout& layout() const { return layout_; }
  [[nodiscard]] const BlockGrid& grid() const { return grid_; }
  [[nodiscard]] sparse::index_t rows() const { return layout_.num_rows(); }
  [[nodiscard]] sparse::index_t cols() const { return layout_.num_cols(); }

  /// Original nonzeros of the source matrix.
  [[nodiscard]] sparse::offset_t nnz() const { return nnz_; }
  /// Logical CSCVE slots = num_vxgs * S_VxG * S_VVec (the nnz(A~) of the
  /// paper's zero-padding rate).
  [[nodiscard]] sparse::offset_t padded_values() const {
    return num_vxgs() * params_.s_vxg * params_.s_vvec;
  }
  /// Values physically stored: padded for kZ, exactly nnz for kM.
  [[nodiscard]] sparse::offset_t stored_values() const {
    return variant_ == Variant::kZ ? padded_values() : nnz_;
  }
  /// Storage dtype of the value array (docs/PRECISION.md). Always kF32 for
  /// double matrices; float matrices may hold bf16/fp16 after
  /// convert_values() — the kernels widen on load and accumulate in T.
  [[nodiscard]] ValueType value_type() const { return value_type_; }
  /// Bytes per stored value under the current dtype.
  [[nodiscard]] std::size_t value_bytes() const {
    return bytes_per_value(value_type_, sizeof(T));
  }
  /// Epsilon the matrix was sparsified with (0 = never sparsified) and the
  /// certified max per-row l1 mass removed by sparsification plus dtype
  /// rounding: |(A~ x)_i - (A x)_i| <= sparsify_error_bound() * max_j|x_j|.
  [[nodiscard]] double sparsify_eps() const { return sparsify_eps_; }
  [[nodiscard]] double sparsify_error_bound() const { return sparsify_bound_; }
  /// The paper's R_nnzE = nnz(A~)/nnz(A) - 1.
  [[nodiscard]] double r_nnze() const {
    return nnz_ == 0 ? 0.0
                     : static_cast<double>(padded_values()) / static_cast<double>(nnz_) - 1.0;
  }
  [[nodiscard]] sparse::offset_t num_vxgs() const {
    return static_cast<sparse::offset_t>(vxg_col_.size());
  }
  [[nodiscard]] int num_blocks() const { return static_cast<int>(blocks_.size()); }
  /// Matrix bytes read per SpMV iteration (values + masks + VxG index +
  /// block table + reference curves) — M(A) in the bandwidth model.
  [[nodiscard]] std::size_t matrix_bytes() const;
  /// Largest per-block y~ scratch requirement, in elements.
  [[nodiscard]] std::size_t ytilde_max_slots() const { return ytilde_max_slots_; }

  // ---- compute ---------------------------------------------------------
  /// y = A x. Parallel; kernels are fully vectorized FMAs over contiguous
  /// y~ slots (Algorithm 3 with the gather replaced by zero-init, since y
  /// is overwritten).
  void spmv(std::span<const T> x, std::span<T> y,
            ThreadScheme scheme = ThreadScheme::kAuto,
            simd::ExpandPath path = simd::ExpandPath::kAuto) const;

  /// y += A x, serial, with the full gather -> compute -> scatter of
  /// Algorithm 3 (mapping iota_k applied and inverted per block).
  void apply_accumulate(std::span<const T> x, std::span<T> y,
                        simd::ExpandPath path = simd::ExpandPath::kAuto) const;

  /// Y = A X for K right-hand sides stored interleaved (X[col * K + k],
  /// Y[row * K + k]) — the multi-slice CT case: one system matrix forward-
  /// projects K slices while its values stream through the cache once.
  /// Matrix traffic per slice drops by K; the kernels stay gather-free.
  void spmv_multi(std::span<const T> x, std::span<T> y, int num_rhs,
                  ThreadScheme scheme = ThreadScheme::kAuto) const;

  /// x = A^T y — CSCV-based backprojection (the paper's stated future
  /// work). Per block: gather y into y~ with iota_k, then each VxG reduces
  /// to one x entry via a contiguous dot product (the transpose of the
  /// forward FMA; same no-gather inner loop). Threads partition image
  /// tiles, whose x ranges are disjoint, so no private copies are needed.
  void spmv_transpose(std::span<const T> y, std::span<T> x,
                      simd::ExpandPath path = simd::ExpandPath::kAuto) const;

  /// X = A^T Y for K right-hand sides stored interleaved (Y[row * K + k],
  /// X[col * K + k]) — the backprojection counterpart of spmv_multi: one
  /// matrix traversal contracts K sinogram columns. Column k of the result
  /// is bitwise identical to spmv_transpose of that column alone (the
  /// kernels visit each column's values in the single-RHS order).
  void spmv_transpose_multi(std::span<const T> y, std::span<T> x, int num_rhs) const;

  // ---- storage transforms (docs/PRECISION.md) --------------------------
  /// Re-encodes the value array to `vt` in place (float matrices only for
  /// reduced dtypes; round-to-nearest-even per value) and invalidates every
  /// cached plan. Returns the certified max per-row l1 rounding mass, which
  /// is also added into sparsify_error_bound(). Converting back to kF32
  /// widens exactly but does not recover precision already rounded away.
  double convert_values(ValueType vt);

  /// Drops every stored entry with |v| < eps: kZ zeroes in place (structure
  /// unchanged), kM repacks values and masks so the dropped entries stop
  /// being streamed. Requires kF32 storage (sparsify before convert_values).
  /// The certificate (report.max_row_l1) accumulates into
  /// sparsify_error_bound(); cached plans are invalidated.
  SparsifyReport sparsify(double eps);

  /// Lazily-built cached execution plan for `opts` (see plan.hpp). All the
  /// apply entry points above route through this, so iterating callers pay
  /// for thread-scheme resolution, kernel dispatch, partitioning, and
  /// scratch allocation exactly once per configuration. The cache holds up
  /// to kPlanCacheSlots plans keyed on (options, thread count) — distinct
  /// num_rhs values coexist — evicted LRU; a plan is rebuilt when the
  /// options, the ambient util::max_threads(), or the matrix identity
  /// change (so set_num_threads() between calls is always honored).
  ///
  /// Plan *acquisition* is thread-safe: a small mutex guards the cache, so
  /// concurrent first calls single-flight the build (one thread constructs,
  /// the rest wait and receive the same plan). The returned reference stays
  /// valid while the matrix lives and no caller requests a different
  /// configuration — a rebuild (changed options or thread count) replaces
  /// the cached plan and frees the old one. Plan *execution* mutates the
  /// plan's private scratch, so concurrent execute() calls still need one
  /// SpmvPlan per caller thread (see pipeline::ReconService's per-worker
  /// plans for the intended pattern).
  const SpmvPlan<T>& plan(const PlanOptions& opts = {}) const;

  /// Cached-plan slots kept per matrix (see plan()). Small on purpose: a
  /// slot pins its plan's scratch, and callers needing many live
  /// configurations (a worker pool) hold their own SpmvPlans instead.
  static constexpr std::size_t kPlanCacheSlots = 4;

  // ---- introspection (tests, analysis benches) -------------------------
  [[nodiscard]] std::span<const BlockInfo> blocks() const { return blocks_; }
  /// Reference bin r_k(v) per (block, view lane): refs()[block * S_VVec + vi].
  [[nodiscard]] std::span<const sparse::index_t> reference_bins() const { return refs_; }
  [[nodiscard]] std::span<const sparse::index_t> vxg_col() const { return vxg_col_; }
  [[nodiscard]] std::span<const std::int32_t> vxg_q() const { return vxg_q_; }
  /// Value array in arithmetic precision — valid only while value_type() is
  /// kF32 (empty after conversion to a reduced dtype; see values_u16()).
  [[nodiscard]] std::span<const T> values() const { return values_; }
  /// 16-bit value array — populated exactly when value_type() is reduced.
  [[nodiscard]] std::span<const std::uint16_t> values_u16() const { return values16_; }
  [[nodiscard]] std::span<const std::uint16_t> masks() const { return masks_; }

  /// Stored value at flat index i, widened to T whatever the dtype (exact:
  /// both 16-bit encodings widen losslessly). Verify/test convenience, not a
  /// kernel path.
  [[nodiscard]] T stored_value(sparse::offset_t i) const {
    if (value_type_ == ValueType::kF32) return values_[static_cast<std::size_t>(i)];
    if constexpr (std::is_same_v<T, float>) {
      const std::uint16_t bits = values16_[static_cast<std::size_t>(i)];
      return value_type_ == ValueType::kBf16 ? simd::bf16_bits_to_float(bits)
                                             : simd::fp16_bits_to_float(bits);
    } else {
      CSCV_CHECK_MSG(false, "reduced value dtype on a non-float matrix");
      return T(0);  // unreachable
    }
  }

  /// Byte-typed pointer to the value stream starting at element `val_begin`
  /// — what the dispatched kernels consume (they know the dtype they were
  /// resolved for).
  [[nodiscard]] const void* value_ptr(sparse::offset_t val_begin) const {
    if (value_type_ == ValueType::kF32) {
      return values_.data() + static_cast<std::size_t>(val_begin);
    }
    return values16_.data() + static_cast<std::size_t>(val_begin);
  }

  /// Matrix row addressed by y~ slot (o_idx, vi) of `block`, or -1 when the
  /// slot is dead (bin off the detector / view past the last one).
  [[nodiscard]] sparse::index_t row_of_slot(int block, int o_idx, int vi) const;

 private:
  void scatter_add_block(int block, const T* ytilde, T* y) const;
  void gather_block(int block, const T* y, T* ytilde) const;
  void run_block(int block, std::span<const T> x, T* ytilde,
                 const dispatch::KernelSet<T>& kernels) const;

  Variant variant_ = Variant::kZ;
  CscvParams params_;
  OperatorLayout layout_;
  BlockGrid grid_;
  sparse::offset_t nnz_ = 0;
  std::size_t ytilde_max_slots_ = 0;

  std::vector<BlockInfo> blocks_;
  util::AlignedVector<sparse::index_t> refs_;    // num_blocks * s_vvec
  util::AlignedVector<sparse::index_t> vxg_col_; // global column per VxG
  util::AlignedVector<std::int32_t> vxg_q_;      // start slot in block y~
  util::AlignedVector<T> values_;                // kZ: VxG-major dense; kM: packed
                                                 //   (kF32 dtype only)
  util::AlignedVector<std::uint16_t> values16_;  // same layout, bf16/fp16 bits
  util::AlignedVector<std::uint16_t> masks_;     // kM: per-CSCVE lane masks
  ValueType value_type_ = ValueType::kF32;
  double sparsify_eps_ = 0.0;    // 0 = never sparsified
  double sparsify_bound_ = 0.0;  // certified max per-row l1 error mass

  // Cached plans — a small MRU-first list keyed on the full (matrix,
  // options, thread count) configuration, guarded by a mutex so concurrent
  // first calls to plan()/spmv() on a shared matrix cannot race on the
  // slots (the warm path pays one uncontended lock). Distinct num_rhs
  // values each get their own slot. Every copy, move, and assignment
  // leaves BOTH matrices with a cold cache: a plan remembers the address
  // of the matrix it was built for, so an assignment target's stale plan
  // would still "match" its own address while indexing the replaced (or
  // destroyed) arrays — the slots must go, on both sides.
  // The assignment operators take the (uncontended — assignment implies
  // exclusive access) locks sequentially, never nested, purely so the
  // capability analysis can check them like any other member; constructors
  // are outside the analysis by design.
  struct PlanCache {
    util::Mutex mu;
    std::vector<std::shared_ptr<SpmvPlan<T>>> slots CSCV_GUARDED_BY(mu);  // MRU first

    PlanCache() = default;
    PlanCache(const PlanCache&) noexcept {}
    PlanCache& operator=(const PlanCache&) noexcept {
      util::MutexLock lock(mu);
      slots.clear();
      return *this;
    }
    PlanCache(PlanCache&& other) noexcept {
      other.slots.clear();  // the moved-from matrix is gutted, so its
    }                       // plans must go too
    PlanCache& operator=(PlanCache&& other) noexcept {
      {
        util::MutexLock lock(mu);
        slots.clear();
      }
      util::MutexLock lock_other(other.mu);
      other.slots.clear();
      return *this;
    }
  };
  mutable PlanCache plan_cache_;

  template <typename U>
  friend class CscvBuilderAccess;
  template <typename U>
  friend class SpmvPlan;
};

// Note: no `extern template class` here on purpose. The out-of-line members
// are explicitly instantiated member-by-member in builder.cpp / spmv.cpp /
// serialize.cpp; suppressing implicit instantiation of the whole class would
// also suppress the in-class inline accessors, which unoptimized builds do
// not inline (undefined references at Debug link time).

}  // namespace cscv::core
