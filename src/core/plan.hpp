// SpmvPlan — the reusable execution context of the CSCV runtime.
//
// Iterative CT reconstruction calls SpMV thousands of times on the same
// matrix (SIRT / OS-SART / CGLS, paper Section III). Everything that does
// not depend on the vector values is therefore hoisted out of the apply
// path into a plan built once per (matrix, thread count, scheme, expand
// path, num_rhs):
//
//   * thread scheme + expand path resolution (was: every call),
//   * the S_VVec x S_VxG x K kernel template dispatch, resolved to function
//     pointers via dispatch.hpp (was: a switch ladder per block loop),
//   * an nnz-weighted block partition — threads are assigned contiguous
//     ranges by prefix sums of per-block VxG counts instead of equal block
//     counts, so sparse corner tiles can't starve a thread's peers,
//   * per-thread aligned y~ scratch and, for the private-y scheme, the
//     threads x m reduction pool, allocated once; each thread re-zeroes
//     only the row interval its blocks can touch, so the warm path
//     performs no heap allocation and no full threads x m fill.
//
// A plan stays *correct* if util::max_threads() changes after construction
// (partition slots are striped over however many OpenMP threads show up),
// but it is tuned for the thread count it was built with;
// CscvMatrix::plan() rebuilds its cached plan on a thread-count change.
// A plan owns mutable scratch: concurrent execute() calls on one plan are
// not allowed (use one plan per caller thread).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/dispatch.hpp"
#include "core/format.hpp"
#include "util/aligned_vector.hpp"
#include "util/telemetry.hpp"

namespace cscv::core {

/// Snapshot returned by SpmvPlan::stats(): the structural half (padding,
/// work and traffic volumes, partition shape) is always available; the
/// dynamic half (call counts, timings, derived rates) is populated only
/// when the library is built with -DCSCV_TELEMETRY=ON and reads as zero
/// otherwise. Padding fraction and GFLOP/s follow the paper's definitions
/// (fig5 / fig4 benches): padding counts zero slots of nnz(A~), GFLOP/s
/// counts only original nonzeros as useful work.
struct PlanStats {
  // ---- structural (always filled) --------------------------------------
  std::uint64_t nnz = 0;             // original nonzeros of A
  std::uint64_t padded_values = 0;   // logical CSCVE slots, nnz(A~)
  std::uint64_t stored_values = 0;   // physical values (kZ: padded, kM: nnz)
  double padding_fraction = 0.0;     // zero slots / nnz(A~) = 1 - occupancy
  double r_nnze = 0.0;               // the paper's nnz(A~)/nnz(A) - 1
  double vxg_occupancy = 0.0;        // nnz / nnz(A~), SIMD lane utilization
  std::uint64_t num_vxgs = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t nonempty_blocks = 0;
  std::uint64_t flops_per_apply = 0;         // useful: 2 * nnz * num_rhs
  std::uint64_t padded_flops_per_apply = 0;  // issued by kZ: 2 * nnz(A~) * num_rhs
  std::uint64_t matrix_bytes = 0;            // M(A) per apply
  std::uint64_t vector_bytes_per_apply = 0;  // x read + y written once
  std::uint64_t scratch_bytes = 0;
  int threads = 0;
  int num_rhs = 1;
  ThreadScheme scheme = ThreadScheme::kRowPartition;
  bool hardware_expand = false;
  /// The kernel ISA tier this plan dispatched to (docs/DISPATCH.md), plus
  /// whether it was forced (CSCV_FORCE_ISA / PlanOptions::isa) and whether
  /// the request had to be clamped to a tier the binary/CPU actually has —
  /// the telemetry trail for "why is this not running AVX-512?".
  simd::IsaTier isa_tier = simd::IsaTier::kGeneric;
  bool isa_forced = false;
  bool isa_clamped = false;
  /// Storage dtype of the matrix values this plan streams, and the bytes
  /// each stored value occupies (2 for bf16/fp16 — docs/PRECISION.md).
  ValueType value_type = ValueType::kF32;
  std::uint64_t bytes_per_value = sizeof(float);
  /// max/mean of per-slot VxG work — 1.0 is a perfectly balanced partition.
  double load_imbalance = 0.0;

  // ---- dynamic (zero unless built with CSCV_TELEMETRY) -----------------
  bool telemetry_enabled = false;
  std::uint64_t applies = 0;
  std::uint64_t transpose_applies = 0;
  double plan_build_seconds = 0.0;
  double apply_seconds_total = 0.0;
  double apply_seconds_min = 0.0;
  double transpose_seconds_total = 0.0;
  /// 2 * nnz * num_rhs / apply_seconds_min / 1e9 (best observed apply).
  double gflops_best = 0.0;
  double gflops_avg = 0.0;
  /// (M(A) + vector traffic) / apply_seconds_min, in GB/s.
  double gbytes_per_second_best = 0.0;
};

template <typename T>
class SpmvPlan {
 public:
  /// Builds a plan for `a`. The matrix must outlive the plan (and not move).
  explicit SpmvPlan(const CscvMatrix<T>& a, const PlanOptions& opts = {});

  /// y = A x (num_rhs == 1) or Y = A X for num_rhs interleaved RHS.
  /// x.size() == cols * num_rhs, y.size() == rows * num_rhs.
  void execute(std::span<const T> x, std::span<T> y) const;

  /// x = A^T y (num_rhs == 1) or X = A^T Y for num_rhs interleaved RHS.
  /// y.size() == rows * num_rhs, x.size() == cols * num_rhs. Column k is
  /// bitwise identical to a single-RHS transpose of that column.
  void execute_transpose(std::span<const T> y, std::span<T> x) const;

  // ---- introspection ---------------------------------------------------
  [[nodiscard]] const CscvMatrix<T>* matrix() const { return a_; }
  [[nodiscard]] const PlanOptions& options() const { return requested_; }
  /// Partition slots == the thread count the plan was built for.
  [[nodiscard]] int threads() const { return threads_; }
  /// The scheme after kAuto resolution.
  [[nodiscard]] ThreadScheme scheme() const { return scheme_; }
  [[nodiscard]] bool hardware_expand() const { return use_hw_; }
  /// The kernel ISA tier the plan resolved (never kAuto).
  [[nodiscard]] simd::IsaTier isa_tier() const { return tier_.tier; }
  /// The storage dtype the plan's kernels decode (kAuto resolved).
  [[nodiscard]] ValueType value_type() const { return value_type_; }
  [[nodiscard]] int num_rhs() const { return num_rhs_; }
  /// VxGs assigned to each forward-partition slot (load-balance checks).
  [[nodiscard]] std::span<const std::uint64_t> work_per_slot() const { return work_; }
  /// Scratch + reduction-pool footprint in bytes (zero after warm-up).
  [[nodiscard]] std::size_t scratch_bytes() const {
    return (ytilde_pool_.size() + copies_.size()) * sizeof(T);
  }

  /// Telemetry snapshot (see PlanStats). The structural half is free; the
  /// dynamic half aggregates the counters recorded by execute()/
  /// execute_transpose() when the build has CSCV_TELEMETRY on.
  [[nodiscard]] PlanStats stats() const;
  /// Clears the dynamic counters (no-op without CSCV_TELEMETRY).
  void reset_telemetry() { counters_.reset(); }

  /// True when this cached plan can serve (matrix, opts) at `threads`.
  /// Re-runs tier selection so a CSCV_FORCE_ISA change between calls (tests,
  /// A/B runs) rebuilds instead of serving the stale tier's kernels.
  [[nodiscard]] bool matches(const CscvMatrix<T>& a, const PlanOptions& opts,
                             int threads) const {
    const ValueType vt =
        opts.value_type == ValueType::kAuto ? a.value_type() : opts.value_type;
    return a_ == &a && requested_ == opts && threads_ == threads && value_type_ == vt &&
           tier_ == dispatch::select_tier_for_dtype(opts.isa, vt);
  }

 private:
  [[nodiscard]] T* ytilde_slot(int slot) const {
    return ytilde_pool_.data() + static_cast<std::size_t>(slot) * ytilde_stride_;
  }
  void scatter_add(int block, const T* ytilde, T* dst) const;  // K-aware
  void gather(int block, const T* src, T* ytilde) const;       // K-aware
  void run_forward(int block, const T* x, T* ytilde) const;    // K-aware

  const CscvMatrix<T>* a_ = nullptr;
  PlanOptions requested_;
  int threads_ = 1;          // partition slots
  int num_rhs_ = 1;
  ThreadScheme scheme_ = ThreadScheme::kRowPartition;  // resolved, never kAuto
  bool use_hw_ = false;
  ValueType value_type_ = ValueType::kF32;  // resolved, never kAuto
  dispatch::TierChoice tier_;  // resolved ISA tier (level-one dispatch)
  dispatch::KernelSet<T> kernels_;

  // Forward partition: view-group granularity for kRowPartition, block
  // granularity (plus per-slot touchable row intervals, in y-element units)
  // for kPrivateY. Transpose partition: image-tile granularity.
  std::vector<std::size_t> group_bounds_;
  std::vector<std::size_t> block_bounds_;
  std::vector<std::pair<std::size_t, std::size_t>> row_interval_;
  std::vector<std::size_t> tile_bounds_;
  std::vector<std::uint64_t> work_;

  std::size_t ytilde_stride_ = 0;
  mutable util::AlignedVector<T> ytilde_pool_;  // threads_ * ytilde_stride_
  mutable util::AlignedVector<T> copies_;       // kPrivateY: threads_ * rows * num_rhs

  // Empty when CSCV_TELEMETRY is off — overlaps other members, adds no
  // state and no codegen (verified by tests/cscv/test_telemetry.cpp).
  [[no_unique_address]] mutable util::telemetry::Counters counters_;
};

}  // namespace cscv::core
