// CSCV construction: IOBLR reordering + CSCVE/VxG packing (Section IV).
#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/format.hpp"
#include "core/verify.hpp"
#include "simd/expand.hpp"
#include "util/assertx.hpp"
#include "util/parallel.hpp"
#include "util/prefix_sum.hpp"

namespace cscv::core {

namespace {

using sparse::index_t;
using sparse::offset_t;

/// One VxG under construction: S_VxG consecutive-offset CSCVEs of `col`.
struct VxgRec {
  index_t col = 0;       // global column
  std::int32_t o_start = 0;
  std::size_t arena_off = 0;  // into the block's dense value arena
  std::int32_t nnz_count = 0;
};

/// Build output of a single block, concatenated into the flat arrays later.
template <typename T>
struct BlockResult {
  std::int32_t o_min = 0;
  std::int32_t o_count = 0;
  std::vector<index_t> refs;        // s_vvec reference bins
  std::vector<VxgRec> vxgs;         // in final processing order
  std::vector<T> arena;             // dense values, V*S per VxG (build order)
  offset_t nnz = 0;                 // original nonzeros in this block
};

template <typename T>
BlockResult<T> build_block(const sparse::CscMatrix<T>& a, const OperatorLayout& layout,
                           const CscvParams& params, const BlockGrid& grid, int block_id) {
  const int s = params.s_vvec;
  const int vxg = params.s_vxg;
  const int g = grid.group_of(block_id);
  const int ty = grid.tile_y_of(block_id);
  const int tx = grid.tile_x_of(block_id);
  const int v0 = grid.first_view(g);
  const int s_eff = std::min(s, layout.num_views - v0);

  const int px0 = tx * params.s_imgb;
  const int py0 = ty * params.s_imgb;
  const int px1 = std::min(px0 + params.s_imgb, layout.image_size);
  const int py1 = std::min(py0 + params.s_imgb, layout.image_size);

  BlockResult<T> out;
  out.refs.assign(static_cast<std::size_t>(s), 0);

  // ---- Pass 1: slice each column's entries inside the view window -----
  // One walk over the block's nonzeros; everything later (envelope,
  // reference curve, offset bucketing) reuses these slices.
  struct Entry {
    std::int32_t vi;
    std::int32_t bin;
    T val;
  };
  std::vector<Entry> entries;                 // all block entries, column-major
  std::vector<std::size_t> col_begin;         // per block column, into entries
  std::vector<index_t> col_ids;
  const int ncols_blk = (px1 - px0) * (py1 - py0);
  col_begin.reserve(static_cast<std::size_t>(ncols_blk) + 1);
  col_ids.reserve(static_cast<std::size_t>(ncols_blk));

  auto rows = a.row_idx();
  auto vals = a.values();
  const index_t row_lo = layout.row_of(v0, 0);
  const index_t row_hi = row_lo + static_cast<index_t>(s_eff) * layout.num_bins;

  for (int py = py0; py < py1; ++py) {
    for (int px = px0; px < px1; ++px) {
      const index_t col = layout.col_of_pixel(px, py);
      col_ids.push_back(col);
      col_begin.push_back(entries.size());
      const auto cbegin = a.col_ptr()[static_cast<std::size_t>(col)];
      const auto cend = a.col_ptr()[static_cast<std::size_t>(col) + 1];
      auto first = std::lower_bound(rows.begin() + cbegin, rows.begin() + cend, row_lo);
      for (auto it = first; it != rows.begin() + cend && *it < row_hi; ++it) {
        const index_t row = *it;
        entries.push_back({layout.view_of_row(row) - v0, layout.bin_of_row(row),
                           vals[static_cast<std::size_t>(it - rows.begin())]});
      }
    }
  }
  col_begin.push_back(entries.size());
  out.nnz = static_cast<offset_t>(entries.size());
  if (entries.empty()) return out;

  // ---- Reference trajectory r_k(v) -----------------------------------
  // The envelope (per-view min bin over the block) doubles as the fallback
  // when the chosen reference pixel has no nonzero at some view.
  std::vector<int> envelope(static_cast<std::size_t>(s_eff),
                            std::numeric_limits<int>::max());
  for (const Entry& e : entries) {
    envelope[static_cast<std::size_t>(e.vi)] =
        std::min(envelope[static_cast<std::size_t>(e.vi)], e.bin);
  }

  index_t ref_col = -1;
  switch (params.reference) {
    case ReferenceStrategy::kBlockCenter:
      ref_col = layout.col_of_pixel(std::min(px0 + params.s_imgb / 2, px1 - 1),
                                    std::min(py0 + params.s_imgb / 2, py1 - 1));
      break;
    case ReferenceStrategy::kBlockCorner:
      ref_col = layout.col_of_pixel(px0, py0);
      break;
    case ReferenceStrategy::kMinEnvelope:
      break;  // envelope only
    case ReferenceStrategy::kConstantBtb:
      break;  // constant curve, handled below
  }
  if (params.reference == ReferenceStrategy::kConstantBtb) {
    // Block Transpose Buffer layout: one constant reference bin for the
    // whole block, so offsets are absolute bins and every CSCVE is a
    // view-major vector at a fixed bin (no trajectory following).
    int block_min = std::numeric_limits<int>::max();
    for (int e : envelope) block_min = std::min(block_min, e);
    if (block_min == std::numeric_limits<int>::max()) block_min = 0;
    for (int vi = 0; vi < s_eff; ++vi) out.refs[static_cast<std::size_t>(vi)] = block_min;
    // fall through to bucketing with the constant curve
  } else {
  std::vector<int> ref_min(static_cast<std::size_t>(s_eff), -1);
  if (params.reference != ReferenceStrategy::kConstantBtb && ref_col >= 0) {
    for (std::size_t c = 0; c < col_ids.size(); ++c) {
      if (col_ids[c] != ref_col) continue;
      for (std::size_t k = col_begin[c]; k < col_begin[c + 1]; ++k) {
        auto& slot = ref_min[static_cast<std::size_t>(entries[k].vi)];
        if (slot < 0 || entries[k].bin < slot) slot = entries[k].bin;
      }
      break;
    }
  }
  for (int vi = 0; vi < s_eff; ++vi) {
    int r = ref_min[static_cast<std::size_t>(vi)];
    if (r < 0) {
      r = envelope[static_cast<std::size_t>(vi)];
      if (r == std::numeric_limits<int>::max()) r = 0;  // view empty in block
    }
    out.refs[static_cast<std::size_t>(vi)] = r;
  }
  }

  // ---- Pass 2: bucket each column's nonzeros by bin offset ------------
  // A column touches only a handful of offsets (trajectories of block
  // pixels are piecewise parallel to the reference, property P1/P2).
  struct Triple {
    std::int32_t o;
    std::int32_t vi;
    T val;
  };
  std::vector<Triple> triples;
  std::vector<std::int32_t> offsets;  // unique offsets of current column

  std::int32_t blk_o_min = std::numeric_limits<std::int32_t>::max();
  std::int32_t blk_o_max = std::numeric_limits<std::int32_t>::min();

  for (std::size_t c = 0; c < col_ids.size(); ++c) {
    {
      const index_t col = col_ids[c];
      if (col_begin[c] == col_begin[c + 1]) continue;
      triples.clear();
      for (std::size_t k = col_begin[c]; k < col_begin[c + 1]; ++k) {
        const Entry& e = entries[k];
        triples.push_back(
            {e.bin - out.refs[static_cast<std::size_t>(e.vi)], e.vi, e.val});
      }
      std::sort(triples.begin(), triples.end(), [](const Triple& x, const Triple& y) {
        if (x.o != y.o) return x.o < y.o;
        return x.vi < y.vi;
      });

      offsets.clear();
      for (const Triple& t : triples) {
        if (offsets.empty() || offsets.back() != t.o) offsets.push_back(t.o);
      }

      // ---- chunk maximal consecutive-offset runs into VxGs ------------
      std::size_t i = 0;
      while (i < offsets.size()) {
        std::size_t j = i;
        while (j + 1 < offsets.size() && offsets[j + 1] == offsets[j] + 1) ++j;
        // run of consecutive offsets [offsets[i], offsets[j]]
        for (std::int32_t start = offsets[i]; start <= offsets[j]; start += vxg) {
          VxgRec rec;
          rec.col = col;
          rec.o_start = start;
          rec.arena_off = out.arena.size();
          out.arena.resize(out.arena.size() + static_cast<std::size_t>(vxg) * s, T(0));
          out.vxgs.push_back(rec);
          blk_o_min = std::min(blk_o_min, start);
          blk_o_max = std::max(blk_o_max, start + vxg - 1);
        }
        i = j + 1;
      }
      // Fill the dense arena of the VxGs just created for this column.
      // VxGs of this column are at the tail of out.vxgs, sorted by o_start.
      for (const Triple& t : triples) {
        // Find the owning VxG by scanning the column's fresh records —
        // there are only a few per column.
        for (auto rit = out.vxgs.rbegin(); rit != out.vxgs.rend(); ++rit) {
          if (rit->col != col) break;
          if (t.o >= rit->o_start && t.o < rit->o_start + vxg) {
            const std::size_t at = rit->arena_off +
                                   static_cast<std::size_t>(t.o - rit->o_start) * s +
                                   static_cast<std::size_t>(t.vi);
            out.arena[at] = t.val;
            rit->nnz_count++;
            break;
          }
        }
      }
    }
  }

  if (out.vxgs.empty()) {
    out.o_min = 0;
    out.o_count = 0;
    return out;
  }
  out.o_min = blk_o_min;
  out.o_count = blk_o_max - blk_o_min + 1;

  // ---- VxG processing order (Fig. 6) ----------------------------------
  switch (params.order) {
    case VxgOrder::kNatural:
      break;
    case VxgOrder::kByOffset:
      std::stable_sort(out.vxgs.begin(), out.vxgs.end(),
                       [](const VxgRec& x, const VxgRec& y) { return x.o_start < y.o_start; });
      break;
    case VxgOrder::kByCount:
      std::stable_sort(out.vxgs.begin(), out.vxgs.end(), [](const VxgRec& x, const VxgRec& y) {
        return x.nnz_count > y.nnz_count;
      });
      break;
  }
  return out;
}

}  // namespace

template <typename T>
CscvMatrix<T> CscvMatrix<T>::build(const sparse::CscMatrix<T>& a, const OperatorLayout& layout,
                                   const CscvParams& params, Variant variant) {
  params.validate();
  layout.validate();
  CSCV_CHECK_MSG(a.rows() == layout.num_rows() && a.cols() == layout.num_cols(),
                 "matrix shape does not match the operator layout");

  CscvMatrix<T> m;
  m.variant_ = variant;
  m.params_ = params;
  m.layout_ = layout;
  m.grid_ = BlockGrid(layout, params.s_vvec, params.s_imgb);
  m.nnz_ = a.nnz();

  const int num_blocks = m.grid_.num_blocks();
  std::vector<BlockResult<T>> results(static_cast<std::size_t>(num_blocks));
  util::parallel_for(0, static_cast<std::size_t>(num_blocks), [&](std::size_t b) {
    results[b] = build_block(a, layout, params, m.grid_, static_cast<int>(b));
  });

  // ---- concatenate into flat arrays -----------------------------------
  const int s = params.s_vvec;
  const int vxg = params.s_vxg;
  offset_t total_vxgs = 0;
  offset_t total_nnz = 0;
  for (const auto& r : results) {
    total_vxgs += static_cast<offset_t>(r.vxgs.size());
    total_nnz += r.nnz;
  }
  CSCV_CHECK_MSG(total_nnz == m.nnz_, "builder lost nonzeros: " << total_nnz << " of "
                                                                << m.nnz_);

  m.blocks_.resize(static_cast<std::size_t>(num_blocks));
  m.refs_.assign(static_cast<std::size_t>(num_blocks) * s, 0);
  m.vxg_col_.resize(static_cast<std::size_t>(total_vxgs));
  m.vxg_q_.resize(static_cast<std::size_t>(total_vxgs));
  if (variant == Variant::kZ) {
    m.values_.assign(static_cast<std::size_t>(total_vxgs * vxg * s), T(0));
  } else {
    // One vector of tail slack keeps branch-free expansion in-bounds.
    m.values_.assign(static_cast<std::size_t>(m.nnz_) + static_cast<std::size_t>(s), T(0));
    m.masks_.assign(static_cast<std::size_t>(total_vxgs * vxg), 0);
  }

  offset_t vxg_cursor = 0;
  offset_t val_cursor = 0;  // kM packed-value cursor
  for (int b = 0; b < num_blocks; ++b) {
    const auto& r = results[static_cast<std::size_t>(b)];
    BlockInfo& info = m.blocks_[static_cast<std::size_t>(b)];
    info.view_group = m.grid_.group_of(b);
    info.tile_y = m.grid_.tile_y_of(b);
    info.tile_x = m.grid_.tile_x_of(b);
    info.o_min = r.o_min;
    info.o_count = r.o_count;
    info.vxg_begin = vxg_cursor;
    info.vxg_end = vxg_cursor + static_cast<offset_t>(r.vxgs.size());
    info.val_begin = variant == Variant::kZ ? vxg_cursor * vxg * s : val_cursor;
    for (int vi = 0; vi < s; ++vi) {
      m.refs_[static_cast<std::size_t>(b) * s + vi] =
          r.refs[static_cast<std::size_t>(vi)];
    }
    for (const VxgRec& rec : r.vxgs) {
      m.vxg_col_[static_cast<std::size_t>(vxg_cursor)] = rec.col;
      m.vxg_q_[static_cast<std::size_t>(vxg_cursor)] =
          (rec.o_start - r.o_min) * s;
      const T* dense = r.arena.data() + rec.arena_off;
      if (variant == Variant::kZ) {
        std::copy_n(dense, static_cast<std::size_t>(vxg) * s,
                    m.values_.data() + vxg_cursor * vxg * s);
      } else {
        for (int e = 0; e < vxg; ++e) {
          std::uint16_t mask = 0;
          for (int l = 0; l < s; ++l) {
            const T v = dense[e * s + l];
            if (v != T(0)) {
              mask |= static_cast<std::uint16_t>(1u << l);
              m.values_[static_cast<std::size_t>(val_cursor++)] = v;
            }
          }
          m.masks_[static_cast<std::size_t>(vxg_cursor * vxg + e)] = mask;
        }
      }
      ++vxg_cursor;
    }
    const std::size_t slots = static_cast<std::size_t>(r.o_count) * s;
    m.ytilde_max_slots_ = std::max(m.ytilde_max_slots_, slots);
  }
  if (variant == Variant::kM) {
    CSCV_CHECK_MSG(val_cursor == m.nnz_,
                   "mask packing mismatch: " << val_cursor << " of " << m.nnz_);
  }
#ifndef NDEBUG
  // CSCV_DCHECK tier: exhaustively re-check every structural invariant of
  // the freshly built matrix in debug builds (free in release). A failure
  // here is a builder bug, caught at the source instead of as a wrong
  // sinogram downstream.
  verify(m, VerifyLevel::kFull).require_ok("CSCV builder postcondition");
#endif
  return m;
}

template <typename T>
std::size_t CscvMatrix<T>::matrix_bytes() const {
  std::size_t bytes = 0;
  if (variant_ == Variant::kZ) {
    bytes += static_cast<std::size_t>(padded_values()) * value_bytes();
  } else {
    bytes += static_cast<std::size_t>(nnz_) * value_bytes();
    bytes += masks_.size() * sizeof(std::uint16_t);
  }
  bytes += vxg_col_.size() * sizeof(sparse::index_t);
  bytes += vxg_q_.size() * sizeof(std::int32_t);
  bytes += blocks_.size() * sizeof(BlockInfo);
  bytes += refs_.size() * sizeof(sparse::index_t);
  return bytes;
}

template <typename T>
sparse::index_t CscvMatrix<T>::row_of_slot(int block, int o_idx, int vi) const {
  CSCV_DCHECK(block >= 0 && block < num_blocks());
  const BlockInfo& info = blocks_[static_cast<std::size_t>(block)];
  CSCV_DCHECK(o_idx >= 0 && o_idx < info.o_count && vi >= 0 && vi < params_.s_vvec);
  const int v = grid_.first_view(info.view_group) + vi;
  if (v >= layout_.num_views) return -1;
  const int bin = refs_[static_cast<std::size_t>(block) * params_.s_vvec + vi] +
                  info.o_min + o_idx;
  if (bin < 0 || bin >= layout_.num_bins) return -1;
  return layout_.row_of(v, bin);
}


// ---- value-storage passes (docs/PRECISION.md) ----------------------------

namespace {

/// Walks every *stored* value slot of `m` in storage order, calling
/// fn(value_index, row) — for kZ that includes the padding and dead slots
/// (their stored value is zero), for kM exactly the packed nonzeros. `row`
/// is -1 for slots outside the operator (kZ padding rows).
template <typename T, typename Fn>
void for_each_stored_slot(const CscvMatrix<T>& m, Fn&& fn) {
  const int s = m.params().s_vvec;
  const int vxg = m.params().s_vxg;
  const auto vxg_q = m.vxg_q();
  const auto masks = m.masks();
  const bool is_m = m.variant() == CscvMatrix<T>::Variant::kM;
  for (int b = 0; b < m.num_blocks(); ++b) {
    const auto& info = m.blocks()[static_cast<std::size_t>(b)];
    auto val = info.val_begin;
    for (auto g = info.vxg_begin; g < info.vxg_end; ++g) {
      const int o0 = vxg_q[static_cast<std::size_t>(g)] / s;
      for (int e = 0; e < vxg; ++e) {
        if (!is_m) {
          for (int l = 0; l < s; ++l) {
            fn(val++, m.row_of_slot(b, o0 + e, l));
          }
        } else {
          const std::uint16_t mask = masks[static_cast<std::size_t>(g) *
                                               static_cast<std::size_t>(vxg) +
                                           static_cast<std::size_t>(e)];
          for (int l = 0; l < s; ++l) {
            if ((mask & (1u << l)) != 0) fn(val++, m.row_of_slot(b, o0 + e, l));
          }
        }
      }
    }
  }
}

inline std::uint16_t narrow_to(core::ValueType vt, float v) {
  return vt == core::ValueType::kBf16 ? simd::WidenBf16::narrow(v)
                                      : simd::WidenF16::narrow(v);
}

inline float widen_from(core::ValueType vt, std::uint16_t bits) {
  return vt == core::ValueType::kBf16 ? simd::WidenBf16::widen(bits)
                                      : simd::WidenF16::widen(bits);
}

}  // namespace

template <typename T>
double CscvMatrix<T>::convert_values(ValueType vt) {
  CSCV_CHECK_MSG(vt != ValueType::kAuto, "convert_values needs a concrete dtype");
  if (vt == value_type_) return 0.0;
  if constexpr (!std::is_same_v<T, float>) {
    CSCV_CHECK_MSG(false, "reduced value storage requires a float matrix, not "
                              << (sizeof(T) * 8) << "-bit elements");
    return 0.0;  // unreachable
  } else {
    double max_row_mass = 0.0;
    if (vt == ValueType::kF32) {
      // Widening back is exact (both reduced dtypes embed into binary32).
      values_.resize(values16_.size());
      for (std::size_t i = 0; i < values16_.size(); ++i) {
        values_[i] = widen_from(value_type_, values16_[i]);
      }
      values16_ = {};
    } else {
      const ValueType from = value_type_;
      const auto load = [&](std::size_t i) {
        return from == ValueType::kF32 ? values_[i] : widen_from(from, values16_[i]);
      };
      const std::size_t n = from == ValueType::kF32 ? values_.size() : values16_.size();
      util::AlignedVector<std::uint16_t> out(n);
      for (std::size_t i = 0; i < n; ++i) out[i] = narrow_to(vt, load(i));
      // Certify the storage rounding: per-row l1 mass of |v - rtne(v)|,
      // folded into the same bound the sparsifier maintains (the two error
      // sources add row-wise, so max-row masses add conservatively).
      std::vector<double> row_mass(static_cast<std::size_t>(rows()), 0.0);
      for_each_stored_slot(*this, [&](sparse::offset_t i, sparse::index_t row) {
        if (row < 0) return;
        const auto idx = static_cast<std::size_t>(i);
        const double err = std::abs(static_cast<double>(load(idx)) -
                                    static_cast<double>(widen_from(vt, out[idx])));
        row_mass[static_cast<std::size_t>(row)] += err;
      });
      for (double rm : row_mass) max_row_mass = std::max(max_row_mass, rm);
      values16_ = std::move(out);
      values_ = {};
      sparsify_bound_ += max_row_mass;
    }
    value_type_ = vt;
    {
      util::MutexLock lock(plan_cache_.mu);
      plan_cache_.slots.clear();  // cached plans decode the old storage
    }
    return max_row_mass;
  }
}

template <typename T>
SparsifyReport CscvMatrix<T>::sparsify(double eps) {
  CSCV_CHECK_MSG(value_type_ == ValueType::kF32,
                 "sparsify requires kF32 storage (sparsify before convert_values)");
  CSCV_CHECK_MSG(std::isfinite(eps) && eps >= 0.0, "sparsify eps must be finite and >= 0");
  SparsifyReport rep;
  rep.eps = eps;
  std::vector<double> row_mass(static_cast<std::size_t>(rows()), 0.0);
  if (variant_ == Variant::kZ) {
    // Drop in place: the slot stays (padding layout is immutable), its
    // stored value becomes an ordinary padding zero.
    for_each_stored_slot(*this, [&](offset_t i, index_t row) {
      T& v = values_[static_cast<std::size_t>(i)];
      if (v == T(0)) return;
      if (std::abs(static_cast<double>(v)) < eps) {
        rep.dropped_mass += std::abs(static_cast<double>(v));
        if (row >= 0) row_mass[static_cast<std::size_t>(row)] +=
            std::abs(static_cast<double>(v));
        v = T(0);
        ++rep.dropped;
      } else {
        ++rep.kept;
      }
    });
  } else {
    // Repack values and masks in place (the write cursor never passes the
    // read cursor), then rewrite each block's val_begin with its new start.
    const int s = params_.s_vvec;
    const int vxg = params_.s_vxg;
    offset_t w = 0;
    for (auto& info : blocks_) {
      offset_t r = info.val_begin;
      info.val_begin = w;
      for (offset_t g = info.vxg_begin; g < info.vxg_end; ++g) {
        const int o0 = vxg_q_[static_cast<std::size_t>(g)] / s;
        for (int e = 0; e < vxg; ++e) {
          auto& mask = masks_[static_cast<std::size_t>(g) * static_cast<std::size_t>(vxg) +
                              static_cast<std::size_t>(e)];
          std::uint16_t new_mask = 0;
          for (int l = 0; l < s; ++l) {
            if ((mask & (1u << l)) == 0) continue;
            const T v = values_[static_cast<std::size_t>(r++)];
            if (std::abs(static_cast<double>(v)) < eps) {
              rep.dropped_mass += std::abs(static_cast<double>(v));
              const index_t row = row_of_slot(static_cast<int>(&info - blocks_.data()),
                                              o0 + e, l);
              if (row >= 0) row_mass[static_cast<std::size_t>(row)] +=
                  std::abs(static_cast<double>(v));
              ++rep.dropped;
            } else {
              new_mask |= static_cast<std::uint16_t>(1u << l);
              values_[static_cast<std::size_t>(w++)] = v;
              ++rep.kept;
            }
          }
          mask = new_mask;
        }
      }
    }
    // One vector of tail slack, zeroed, mirroring the builder's layout.
    values_.resize(static_cast<std::size_t>(w) + static_cast<std::size_t>(s));
    std::fill(values_.begin() + static_cast<std::ptrdiff_t>(w), values_.end(), T(0));
  }
  for (double rm : row_mass) rep.max_row_l1 = std::max(rep.max_row_l1, rm);
  nnz_ = static_cast<offset_t>(rep.kept);
  sparsify_eps_ = std::max(sparsify_eps_, eps);
  sparsify_bound_ += rep.max_row_l1;  // row-wise error masses add
  {
    util::MutexLock lock(plan_cache_.mu);
    plan_cache_.slots.clear();  // stats/val_begin/kernels all changed
  }
  return rep;
}

template CscvMatrix<float> CscvMatrix<float>::build(const sparse::CscMatrix<float>&,
                                                    const OperatorLayout&, const CscvParams&,
                                                    CscvMatrix<float>::Variant);
template CscvMatrix<double> CscvMatrix<double>::build(const sparse::CscMatrix<double>&,
                                                      const OperatorLayout&,
                                                      const CscvParams&,
                                                      CscvMatrix<double>::Variant);
template std::size_t CscvMatrix<float>::matrix_bytes() const;
template std::size_t CscvMatrix<double>::matrix_bytes() const;
template sparse::index_t CscvMatrix<float>::row_of_slot(int, int, int) const;
template sparse::index_t CscvMatrix<double>::row_of_slot(int, int, int) const;
template double CscvMatrix<float>::convert_values(ValueType);
template double CscvMatrix<double>::convert_values(ValueType);
template SparsifyReport CscvMatrix<float>::sparsify(double);
template SparsifyReport CscvMatrix<double>::sparsify(double);

}  // namespace cscv::core
