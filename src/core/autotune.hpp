// Automatic CSCV parameter selection — the paper's Section V-D procedure as
// a library call.
//
// The paper stresses that CSCV's "parameter selection does not need to be
// carried out on a case-by-case basis" within one acquisition family; this
// tuner is for crossing families (new geometry, new sampling): it sweeps a
// small grid, measures real SpMV time per candidate, and returns the best
// configuration under the paper's selection rule (single-thread for
// CSCV-Z's latency-bound regime, all-threads for CSCV-M's bandwidth-bound
// regime).
#pragma once

#include <vector>

#include "core/format.hpp"

namespace cscv::core {

struct AutotuneOptions {
  std::vector<int> s_vvec_candidates = {4, 8, 16};
  std::vector<int> s_imgb_candidates = {8, 16, 32, 64};
  std::vector<int> s_vxg_candidates = {1, 2, 4, 8};
  int iterations = 8;          // timing repetitions per candidate (min taken)
  int threads = 0;             // 0 = OpenMP max
  double max_r_nnze = 4.0;     // skip candidates whose padding explodes
};

struct AutotuneResult {
  CscvParams params;
  double gflops = 0.0;
  double r_nnze = 0.0;
  int candidates_tried = 0;
  int candidates_skipped = 0;  // rejected by the max_r_nnze cap
};

/// Sweeps the grid for one variant and returns the fastest configuration.
/// CSCV-Z is timed single-threaded, CSCV-M at `threads` (the paper's rule).
template <typename T>
AutotuneResult autotune(const sparse::CscMatrix<T>& a, const OperatorLayout& layout,
                        typename CscvMatrix<T>::Variant variant,
                        const AutotuneOptions& options = {});

extern template AutotuneResult autotune<float>(const sparse::CscMatrix<float>&,
                                               const OperatorLayout&,
                                               CscvMatrix<float>::Variant,
                                               const AutotuneOptions&);
extern template AutotuneResult autotune<double>(const sparse::CscMatrix<double>&,
                                                const OperatorLayout&,
                                                CscvMatrix<double>::Variant,
                                                const AutotuneOptions&);

}  // namespace cscv::core
