#include "core/autotune.hpp"

#include "sparse/random.hpp"
#include "util/parallel.hpp"
#include "util/timing.hpp"

namespace cscv::core {

template <typename T>
AutotuneResult autotune(const sparse::CscMatrix<T>& a, const OperatorLayout& layout,
                        typename CscvMatrix<T>::Variant variant,
                        const AutotuneOptions& options) {
  CSCV_CHECK(options.iterations >= 1);
  const bool is_z = variant == CscvMatrix<T>::Variant::kZ;
  const int threads = is_z ? 1
                           : (options.threads > 0 ? options.threads : util::max_threads());

  const auto x = sparse::random_vector<T>(static_cast<std::size_t>(a.cols()), 99, 0.0, 1.0);
  util::AlignedVector<T> y(static_cast<std::size_t>(a.rows()));

  AutotuneResult best;
  best.gflops = -1.0;
  const int saved_threads = util::max_threads();
  for (int s_vvec : options.s_vvec_candidates) {
    for (int s_imgb : options.s_imgb_candidates) {
      for (int s_vxg : options.s_vxg_candidates) {
        const CscvParams p{.s_vvec = s_vvec, .s_imgb = s_imgb, .s_vxg = s_vxg};
        p.validate();
        const auto m = CscvMatrix<T>::build(a, layout, p, variant);
        ++best.candidates_tried;
        if (m.r_nnze() > options.max_r_nnze) {
          ++best.candidates_skipped;
          continue;
        }
        util::set_num_threads(threads);
        const double seconds =
            util::min_time_seconds(options.iterations, [&] { m.spmv(x, y); });
        util::set_num_threads(saved_threads);
        const double gflops =
            util::spmv_gflops(static_cast<std::uint64_t>(m.nnz()), seconds);
        if (gflops > best.gflops) {
          best.gflops = gflops;
          best.params = p;
          best.r_nnze = m.r_nnze();
        }
      }
    }
  }
  CSCV_CHECK_MSG(best.gflops >= 0.0, "no candidate survived the R_nnzE cap");
  return best;
}

template AutotuneResult autotune<float>(const sparse::CscMatrix<float>&,
                                        const OperatorLayout&, CscvMatrix<float>::Variant,
                                        const AutotuneOptions&);
template AutotuneResult autotune<double>(const sparse::CscMatrix<double>&,
                                         const OperatorLayout&, CscvMatrix<double>::Variant,
                                         const AutotuneOptions&);

}  // namespace cscv::core
