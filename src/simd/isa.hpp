// Runtime and compile-time ISA detection.
//
// The paper's CSCV-M kernel uses the AVX-512 `vexpand` instruction on Intel
// and a software expansion ("soft-vexpand") elsewhere; this header is how the
// rest of the library asks which path is available. Everything else in the
// library is plain C++ left to compiler auto-vectorization (the paper's
// performance-portability claim).
//
// IsaTier names the kernel tiers the multiversioned build compiles
// (docs/DISPATCH.md): the same kernel sources built per tier with that
// tier's arch flags. Tier *selection* — which compiled tier this process
// runs — lives in core/dispatch.hpp; this header only defines the vocabulary
// and the CPU-capability predicate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "util/assertx.hpp"

namespace cscv::simd {

/// CPU SIMD capability snapshot.
struct IsaInfo {
  bool avx2 = false;
  bool fma = false;       // FMA3 (ships with every AVX2 CPU we target)
  bool avx512f = false;
  bool avx512vl = false;  // 128/256-bit forms of AVX-512 ops (vexpand at width 4/8)
  bool avx512dq = false;
  // Half-width value conversion (docs/PRECISION.md). f16c gates the fp16
  // widen-on-load fast path; the avx512 bf16/fp16 extensions are detected
  // and reported but deliberately not used for arithmetic — their dot
  // product forms would change the fp32 accumulation-chain shape.
  bool f16c = false;        // vcvtph2ps/vcvtps2ph (fp16 <-> fp32 convert)
  bool avx512bf16 = false;  // vcvtne2ps2bf16/vdpbf16ps (reported only)
  bool avx512fp16 = false;  // native binary16 arithmetic (reported only)

  /// True when hardware vexpand is usable at a given element width
  /// (AVX-512F provides the 512-bit form; VL the narrower forms).
  [[nodiscard]] bool hardware_expand(int vector_bits) const {
    if (vector_bits == 512) return avx512f;
    return avx512vl;
  }
};

/// Queries the executing CPU (cached after the first call).
inline const IsaInfo& cpu_isa() {
  static const IsaInfo info = [] {
    IsaInfo i;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    i.avx2 = __builtin_cpu_supports("avx2");
    i.fma = __builtin_cpu_supports("fma");
    i.avx512f = __builtin_cpu_supports("avx512f");
    i.avx512vl = __builtin_cpu_supports("avx512vl");
    i.avx512dq = __builtin_cpu_supports("avx512dq");
    i.f16c = __builtin_cpu_supports("f16c");
    // GCC's builtin name table has not always carried the two AVX-512
    // half-precision extensions; read the CPUID leaves directly.
    {
      unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
      if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
        i.avx512fp16 = (edx & (1u << 23)) != 0;  // leaf 7.0 EDX[23]
      }
      eax = ebx = ecx = edx = 0;
      if (__get_cpuid_count(7, 1, &eax, &ebx, &ecx, &edx) != 0) {
        i.avx512bf16 = (eax & (1u << 5)) != 0;  // leaf 7.1 EAX[5]
      }
    }
#endif
    return i;
  }();
  return info;
}

/// Compile-time availability of the AVX-512 expand intrinsics (the binary
/// must have been compiled with the feature enabled to even emit them).
/// Note these describe the *including* translation unit — the multiversioned
/// kernel tiers are compiled with their own flags and report through the
/// dispatch registry instead.
#if defined(__AVX512F__)
inline constexpr bool kCompiledAvx512f = true;
#else
inline constexpr bool kCompiledAvx512f = false;
#endif
#if defined(__AVX512VL__)
inline constexpr bool kCompiledAvx512vl = true;
#else
inline constexpr bool kCompiledAvx512vl = false;
#endif

/// The kernel tiers a multiversioned binary may carry, ordered: a higher
/// value strictly implies the lower tiers' features. Values are stable —
/// they index the dispatch registry and appear in telemetry.
enum class IsaTier : int {
  kAuto = -1,    // "pick for me" (PlanOptions default; never a resolved tier)
  kGeneric = 0,  // baseline x86-64, no AVX — portable everywhere
  kAvx2 = 1,     // AVX2 + FMA
  kAvx512 = 2,   // AVX-512 F+VL+DQ (hardware vexpand at every width)
};

inline constexpr int kNumIsaTiers = 3;

/// Stable lower-case name, as accepted by CSCV_FORCE_ISA.
constexpr const char* isa_tier_name(IsaTier tier) {
  switch (tier) {
    case IsaTier::kAuto: return "auto";
    case IsaTier::kGeneric: return "generic";
    case IsaTier::kAvx2: return "avx2";
    case IsaTier::kAvx512: return "avx512";
  }
  return "?";
}

/// Parses a CSCV_FORCE_ISA-style tier name ("auto" included). Unknown names
/// throw util::CheckError — a misspelled override should fail loudly, not
/// silently run the wrong kernels.
inline IsaTier parse_isa_tier(std::string_view name) {
  if (name == "auto") return IsaTier::kAuto;
  if (name == "generic") return IsaTier::kGeneric;
  if (name == "avx2") return IsaTier::kAvx2;
  if (name == "avx512") return IsaTier::kAvx512;
  CSCV_CHECK_MSG(false, "unknown ISA tier \"" << std::string(name)
                                              << "\" (expected auto|generic|avx2|avx512)");
}

/// True when the executing CPU can run code compiled for `tier`.
inline bool cpu_supports_tier(IsaTier tier) {
  const IsaInfo& i = cpu_isa();
  switch (tier) {
    case IsaTier::kAuto: return true;
    case IsaTier::kGeneric: return true;
    case IsaTier::kAvx2: return i.avx2 && i.fma;
    case IsaTier::kAvx512: return i.avx512f && i.avx512vl && i.avx512dq;
  }
  return false;
}

/// Human-readable ISA summary for bench headers.
inline std::string describe_isa() {
  const IsaInfo& i = cpu_isa();
  std::string s = "isa:";
  s += i.avx2 ? " avx2" : "";
  s += i.fma ? " fma" : "";
  s += i.avx512f ? " avx512f" : "";
  s += i.avx512vl ? " avx512vl" : "";
  s += i.avx512dq ? " avx512dq" : "";
  s += i.f16c ? " f16c" : "";
  s += i.avx512bf16 ? " avx512bf16" : "";
  s += i.avx512fp16 ? " avx512fp16" : "";
  s += kCompiledAvx512f ? " (compiled avx512f)" : " (compiled generic)";
  return s;
}

}  // namespace cscv::simd
