// Runtime and compile-time ISA detection.
//
// The paper's CSCV-M kernel uses the AVX-512 `vexpand` instruction on Intel
// and a software expansion ("soft-vexpand") elsewhere; this header is how the
// rest of the library asks which path is available. Everything else in the
// library is plain C++ left to compiler auto-vectorization (the paper's
// performance-portability claim).
#pragma once

#include <string>

namespace cscv::simd {

/// CPU SIMD capability snapshot.
struct IsaInfo {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512vl = false;  // 128/256-bit forms of AVX-512 ops (vexpand at width 4/8)

  /// True when hardware vexpand is usable at a given element width
  /// (AVX-512F provides the 512-bit form; VL the narrower forms).
  [[nodiscard]] bool hardware_expand(int vector_bits) const {
    if (vector_bits == 512) return avx512f;
    return avx512vl;
  }
};

/// Queries the executing CPU (cached after the first call).
inline const IsaInfo& cpu_isa() {
  static const IsaInfo info = [] {
    IsaInfo i;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    i.avx2 = __builtin_cpu_supports("avx2");
    i.avx512f = __builtin_cpu_supports("avx512f");
    i.avx512vl = __builtin_cpu_supports("avx512vl");
#endif
    return i;
  }();
  return info;
}

/// Compile-time availability of the AVX-512 expand intrinsics (the binary
/// must have been compiled with the feature enabled to even emit them).
#if defined(__AVX512F__)
inline constexpr bool kCompiledAvx512f = true;
#else
inline constexpr bool kCompiledAvx512f = false;
#endif
#if defined(__AVX512VL__)
inline constexpr bool kCompiledAvx512vl = true;
#else
inline constexpr bool kCompiledAvx512vl = false;
#endif

/// Human-readable ISA summary for bench headers.
inline std::string describe_isa() {
  const IsaInfo& i = cpu_isa();
  std::string s = "isa:";
  s += i.avx2 ? " avx2" : "";
  s += i.avx512f ? " avx512f" : "";
  s += i.avx512vl ? " avx512vl" : "";
  s += kCompiledAvx512f ? " (compiled avx512f)" : " (compiled generic)";
  return s;
}

}  // namespace cscv::simd
