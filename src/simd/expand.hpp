// Vector expansion: scatter a packed run of values into a fixed-width vector
// under a bitmask, zero-filling the gaps.
//
// This is the core primitive of padding-removal formats (CSCV-M here, SPC5 in
// src/sparse): values are stored without padding zeros plus one mask word per
// vector; the kernel re-inflates each vector on the fly. Two paths exist,
// mirroring the paper:
//   * hardware: AVX-512 `vexpandps/vexpandpd` (expand-load from memory),
//   * soft-vexpand: portable scalar expansion, used on machines without
//     AVX-512 (the paper's Zen2 platform) — correct everywhere, slower.
//
// All functions return the number of packed values consumed (popcount of the
// mask) so callers can advance their packed-value cursor.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace cscv::simd {

/// Which expansion implementation a kernel should use.
enum class ExpandPath {
  kAuto,      // hardware when compiled in and supported, else software
  kHardware,  // force AVX-512 vexpand (caller must have checked cpu_isa())
  kSoftware,  // force soft-vexpand (models the paper's Zen2 runs)
};

/// Portable expansion: out[l] = mask bit l ? packed[k++] : 0, l in [0, Width).
/// The loop form is branchy on purpose — this is exactly the instruction
/// overhead the paper attributes to soft-vexpand.
template <typename T, int Width>
inline int expand_soft(const T* packed, std::uint32_t mask, T* out) {
  int k = 0;
  for (int l = 0; l < Width; ++l) {
    if (mask & (1u << l)) {
      out[l] = packed[k++];
    } else {
      out[l] = T(0);
    }
  }
  return k;
}

/// Branch-free software variant: unconditionally reads Width values from
/// `packed` (caller guarantees readability — builders over-allocate by one
/// vector) and selects via per-lane cursors. Often auto-vectorizes better
/// than expand_soft for wide vectors; still far costlier than hardware.
template <typename T, int Width>
inline int expand_soft_unrolled(const T* packed, std::uint32_t mask, T* out) {
  int cursor[Width];
  int k = 0;
  for (int l = 0; l < Width; ++l) {
    cursor[l] = k;
    k += (mask >> l) & 1;
  }
  for (int l = 0; l < Width; ++l) {
    const T v = packed[cursor[l]];
    out[l] = ((mask >> l) & 1) ? v : T(0);
  }
  return k;
}

#if defined(__AVX512F__)

/// Hardware expand-load of 16 floats (512-bit).
inline int expand_hw16(const float* packed, std::uint32_t mask, float* out) {
  const __m512 v = _mm512_maskz_expandloadu_ps(static_cast<__mmask16>(mask), packed);
  _mm512_storeu_ps(out, v);
  return std::popcount(mask & 0xFFFFu);
}

/// Hardware expand-load of 8 doubles (512-bit).
inline int expand_hw8(const double* packed, std::uint32_t mask, double* out) {
  const __m512d v = _mm512_maskz_expandloadu_pd(static_cast<__mmask8>(mask), packed);
  _mm512_storeu_pd(out, v);
  return std::popcount(mask & 0xFFu);
}

#if defined(__AVX512VL__)
/// Hardware expand-load of 8 floats (256-bit, needs AVX-512VL).
inline int expand_hw8(const float* packed, std::uint32_t mask, float* out) {
  const __m256 v = _mm256_maskz_expandloadu_ps(static_cast<__mmask8>(mask), packed);
  _mm256_storeu_ps(out, v);
  return std::popcount(mask & 0xFFu);
}

/// Hardware expand-load of 4 floats (128-bit).
inline int expand_hw4(const float* packed, std::uint32_t mask, float* out) {
  const __m128 v = _mm_maskz_expandloadu_ps(static_cast<__mmask8>(mask & 0xFu), packed);
  _mm_storeu_ps(out, v);
  return std::popcount(mask & 0xFu);
}

/// Hardware expand-load of 4 doubles (256-bit).
inline int expand_hw4(const double* packed, std::uint32_t mask, double* out) {
  const __m256d v = _mm256_maskz_expandloadu_pd(static_cast<__mmask8>(mask & 0xFu), packed);
  _mm256_storeu_pd(out, v);
  return std::popcount(mask & 0xFu);
}
#endif  // __AVX512VL__

#endif  // __AVX512F__

/// True when a hardware expansion exists, in this binary, for (T, Width).
template <typename T, int Width>
constexpr bool has_hardware_expand() {
#if defined(__AVX512F__)
  if constexpr (std::is_same_v<T, float> && Width == 16) return true;
  if constexpr (std::is_same_v<T, double> && Width == 8) return true;
#if defined(__AVX512VL__)
  if constexpr (std::is_same_v<T, float> && (Width == 8 || Width == 4)) return true;
  if constexpr (std::is_same_v<T, double> && Width == 4) return true;
#endif
#endif
  return false;
}

/// Unified entry point: expands `packed` under `mask` into out[0..Width).
/// `UseHardware` is a compile-time choice so the kernel instantiations for
/// the hardware and software paths are separate, branch-free loops.
template <typename T, int Width, bool UseHardware>
inline int expand(const T* packed, std::uint32_t mask, T* out) {
  if constexpr (UseHardware) {
    static_assert(has_hardware_expand<T, Width>(),
                  "hardware expand not available for this (type, width)");
#if defined(__AVX512F__)
    if constexpr (std::is_same_v<T, float> && Width == 16) return expand_hw16(packed, mask, out);
    if constexpr (std::is_same_v<T, double> && Width == 8) return expand_hw8(packed, mask, out);
#if defined(__AVX512VL__)
    if constexpr (std::is_same_v<T, float> && Width == 8) return expand_hw8(packed, mask, out);
    if constexpr (std::is_same_v<T, float> && Width == 4) return expand_hw4(packed, mask, out);
    if constexpr (std::is_same_v<T, double> && Width == 4) return expand_hw4(packed, mask, out);
#endif
#endif
    __builtin_unreachable();
  } else {
    return expand_soft<T, Width>(packed, mask, out);
  }
}

/// True when expansion at `Width` can be assembled from hardware expands,
/// possibly by splitting into halves (e.g. 16 doubles = two vexpandpd).
template <typename T, int Width>
constexpr bool has_chunked_hardware_expand() {
  if constexpr (has_hardware_expand<T, Width>()) {
    return true;
  } else if constexpr (Width % 2 == 0 && Width > 1) {
    return has_chunked_hardware_expand<T, Width / 2>();
  } else {
    return false;
  }
}

/// Width-agnostic expansion: splits `Width` into hardware-supported chunks
/// when the exact width has no single instruction (e.g. 16 doubles = two
/// 8-wide vexpandpd). Falls back to soft expansion when UseHardware is false.
template <typename T, int Width, bool UseHardware>
inline int expand_any(const T* packed, std::uint32_t mask, T* out) {
  if constexpr (!UseHardware) {
    return expand_soft<T, Width>(packed, mask, out);
  } else {
    static_assert(has_chunked_hardware_expand<T, Width>(),
                  "no hardware expand path for this (type, width)");
    if constexpr (has_hardware_expand<T, Width>()) {
      return expand<T, Width, true>(packed, mask, out);
    } else {
      constexpr int kHalf = Width / 2;
      const int lo = expand_any<T, kHalf, true>(packed, mask & ((1u << kHalf) - 1u), out);
      const int hi = expand_any<T, kHalf, true>(packed + lo, mask >> kHalf, out + kHalf);
      return lo + hi;
    }
  }
}

/// Fused expand + multiply-accumulate: y[l] += xv * expand(packed, mask)[l]
/// for l in [0, Width). This is the inner operation of padding-removing
/// kernels (CSCV-M, SPC5); fusing keeps the hardware path entirely in
/// registers (vexpandps -> vfmadd) instead of round-tripping through a
/// temporary buffer. Returns the number of packed values consumed.
template <typename T, int Width, bool UseHardware>
inline int expand_fma(const T* packed, std::uint32_t mask, T xv, T* y) {
  if constexpr (!UseHardware) {
    // soft-vexpand: the cursor-advance loop is the instruction overhead the
    // paper measures on its non-AVX-512 platform.
    int k = 0;
    for (int l = 0; l < Width; ++l) {
      if (mask & (1u << l)) {
        y[l] += xv * packed[k++];
      }
    }
    return k;
  } else {
    static_assert(has_chunked_hardware_expand<T, Width>());
#if defined(__AVX512F__)
    if constexpr (std::is_same_v<T, float> && Width == 16) {
      const __m512 v = _mm512_maskz_expandloadu_ps(static_cast<__mmask16>(mask), packed);
      const __m512 acc = _mm512_loadu_ps(y);
      _mm512_storeu_ps(y, _mm512_fmadd_ps(_mm512_set1_ps(xv), v, acc));
      return std::popcount(mask & 0xFFFFu);
    } else if constexpr (std::is_same_v<T, double> && Width == 8) {
      const __m512d v = _mm512_maskz_expandloadu_pd(static_cast<__mmask8>(mask), packed);
      const __m512d acc = _mm512_loadu_pd(y);
      _mm512_storeu_pd(y, _mm512_fmadd_pd(_mm512_set1_pd(xv), v, acc));
      return std::popcount(mask & 0xFFu);
    } else
#if defined(__AVX512VL__)
        if constexpr (std::is_same_v<T, float> && Width == 8) {
      const __m256 v = _mm256_maskz_expandloadu_ps(static_cast<__mmask8>(mask), packed);
      const __m256 acc = _mm256_loadu_ps(y);
      _mm256_storeu_ps(y, _mm256_fmadd_ps(_mm256_set1_ps(xv), v, acc));
      return std::popcount(mask & 0xFFu);
    } else if constexpr (std::is_same_v<T, float> && Width == 4) {
      const __m128 v = _mm_maskz_expandloadu_ps(static_cast<__mmask8>(mask & 0xFu), packed);
      const __m128 acc = _mm_loadu_ps(y);
      _mm_storeu_ps(y, _mm_fmadd_ps(_mm_set1_ps(xv), v, acc));
      return std::popcount(mask & 0xFu);
    } else if constexpr (std::is_same_v<T, double> && Width == 4) {
      const __m256d v =
          _mm256_maskz_expandloadu_pd(static_cast<__mmask8>(mask & 0xFu), packed);
      const __m256d acc = _mm256_loadu_pd(y);
      _mm256_storeu_pd(y, _mm256_fmadd_pd(_mm256_set1_pd(xv), v, acc));
      return std::popcount(mask & 0xFu);
    } else
#endif  // __AVX512VL__
    {
      // Chunked fallback (e.g. 16 doubles as two 8-wide halves).
      constexpr int kHalf = Width / 2;
      const int lo = expand_fma<T, kHalf, true>(packed, mask & ((1u << kHalf) - 1u), xv, y);
      const int hi = expand_fma<T, kHalf, true>(packed + lo, mask >> kHalf, xv, y + kHalf);
      return lo + hi;
    }
#else
    __builtin_unreachable();
#endif  // __AVX512F__
  }
}

}  // namespace cscv::simd
