// Vector expansion: scatter a packed run of values into a fixed-width vector
// under a bitmask, zero-filling the gaps.
//
// This is the core primitive of padding-removal formats (CSCV-M here, SPC5 in
// src/sparse): values are stored without padding zeros plus one mask word per
// vector; the kernel re-inflates each vector on the fly. Two paths exist,
// mirroring the paper:
//   * hardware: AVX-512 `vexpandps/vexpandpd` (expand-load from memory),
//   * soft-vexpand: portable scalar expansion, used on machines without
//     AVX-512 (the paper's Zen2 platform) — correct everywhere, slower.
//
// All functions return the number of packed values consumed (popcount of the
// mask) so callers can advance their packed-value cursor.
//
// The implementation lives in expand_body.inc so the multiversioned kernel
// tiers (core/kernels_isa.cpp, docs/DISPATCH.md) can compile their own
// internal-linkage copy under per-tier arch flags; including this header
// gives the ordinary ambient-flags build.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__AVX512F__) || defined(__F16C__)
#include <immintrin.h>
#endif

namespace cscv::simd {

/// Which expansion implementation a kernel should use.
enum class ExpandPath {
  kAuto,      // hardware when compiled in and supported, else software
  kHardware,  // force AVX-512 vexpand (caller must have checked cpu_isa())
  kSoftware,  // force soft-vexpand (models the paper's Zen2 runs)
};

#include "simd/expand_body.inc"  // NOLINT(bugprone-suspicious-include)

}  // namespace cscv::simd
