#include "pipeline/service.hpp"

#include <algorithm>
#include <exception>
#include <list>
#include <optional>
#include <utility>
#include <vector>

#include "recon/fbp.hpp"
#include "recon/operators.hpp"
#include "recon/os_sart.hpp"
#include "util/parallel.hpp"
#include "util/timing.hpp"

namespace cscv::pipeline {

util::Json ServiceStats::to_json() const {
  util::Json j = util::Json::object();
  j["submitted"] = util::Json(submitted);
  j["completed"] = util::Json(completed);
  j["rejected"] = util::Json(rejected);
  j["expired"] = util::Json(expired);
  j["cancelled"] = util::Json(cancelled);
  j["failed"] = util::Json(failed);
  j["batches"] = util::Json(batches);
  j["batched_jobs"] = util::Json(batched_jobs);
  j["debatched"] = util::Json(debatched);
  j["qos_interactive"] = util::Json(qos_interactive);
  j["qos_batch"] = util::Json(qos_batch);
  return j;
}

ServiceStats ServiceStats::from_json(const util::Json& j) {
  ServiceStats s;
  s.submitted = static_cast<std::uint64_t>(j.at("submitted").as_int());
  s.completed = static_cast<std::uint64_t>(j.at("completed").as_int());
  s.rejected = static_cast<std::uint64_t>(j.at("rejected").as_int());
  s.expired = static_cast<std::uint64_t>(j.at("expired").as_int());
  s.cancelled = static_cast<std::uint64_t>(j.at("cancelled").as_int());
  s.failed = static_cast<std::uint64_t>(j.at("failed").as_int());
  s.batches = static_cast<std::uint64_t>(j.at("batches").as_int());
  s.batched_jobs = static_cast<std::uint64_t>(j.at("batched_jobs").as_int());
  s.debatched = static_cast<std::uint64_t>(j.at("debatched").as_int());
  s.qos_interactive = static_cast<std::uint64_t>(j.at("qos_interactive").as_int());
  s.qos_batch = static_cast<std::uint64_t>(j.at("qos_batch").as_int());
  return s;
}

ReconResult execute_job(const ReconJob& job, const SystemMatrixEntry& entry,
                        const core::SpmvPlan<float>* plan) {
  job.geometry.validate();
  const auto rows = static_cast<std::size_t>(job.geometry.num_rows());
  const auto cols = static_cast<std::size_t>(job.geometry.num_cols());
  CSCV_CHECK_MSG(job.sinogram.size() == rows, "sinogram has " << job.sinogram.size()
                                                              << " elements, geometry wants "
                                                              << rows);
  ReconResult r;
  r.tag = job.tag;
  util::WallTimer timer;
  r.volume.assign(cols, 0.0F);
  switch (job.algorithm) {
    case Algorithm::kFbp: {
      CSCV_CHECK_MSG(plan != nullptr && plan->matrix() == entry.cscv.get(),
                     "kFbp needs a plan over the entry's CSCV matrix");
      const recon::PlanOperator<float> op(*plan);
      r.volume = recon::fbp<float>(job.geometry, op, job.sinogram);
      r.iterations_run = 1;
      break;
    }
    case Algorithm::kSirt:
    case Algorithm::kCgls: {
      CSCV_CHECK_MSG(plan != nullptr && plan->matrix() == entry.cscv.get(),
                     "iterative algorithms need a plan over the entry's CSCV matrix");
      const recon::PlanOperator<float> op(*plan);
      const recon::RunStats stats =
          job.algorithm == Algorithm::kSirt
              ? recon::sirt<float>(op, job.sinogram, r.volume, job.solve)
              : recon::cgls<float>(op, job.sinogram, r.volume, job.solve);
      r.iterations_run = stats.iterations_run;
      if (!stats.residual_norms.empty()) r.final_residual = stats.residual_norms.back();
      break;
    }
    case Algorithm::kOsSart: {
      CSCV_CHECK_MSG(entry.csr != nullptr, "kOsSart entry is missing its CSR operator");
      recon::OsSartOptions opts;
      opts.iterations = job.solve.iterations;
      opts.num_subsets = job.os_sart_subsets;
      opts.relaxation = job.solve.relaxation;
      opts.enforce_nonneg = job.solve.enforce_nonneg;
      const recon::RunStats stats =
          recon::os_sart<float>(*entry.csr, entry.layout, job.sinogram, r.volume, opts);
      r.iterations_run = stats.iterations_run;
      if (!stats.residual_norms.empty()) r.final_residual = stats.residual_norms.back();
      break;
    }
  }
  r.solve_seconds = timer.seconds();
  if (plan != nullptr) r.plan_stats = plan->stats();
  r.status = JobStatus::kOk;
  return r;
}

std::vector<ReconResult> execute_job_batch(std::span<const ReconJob> jobs,
                                           const SystemMatrixEntry& entry,
                                           const core::SpmvPlan<float>* plan) {
  CSCV_CHECK_MSG(!jobs.empty(), "execute_job_batch needs at least one job");
  if (jobs.size() == 1) {
    std::vector<ReconResult> out;
    out.push_back(execute_job(jobs[0], entry, plan));
    return out;
  }
  const Algorithm algo = jobs[0].algorithm;
  CSCV_CHECK_MSG(algo != Algorithm::kFbp, "kFbp jobs are never batched");
  const auto rows = static_cast<std::size_t>(jobs[0].geometry.num_rows());
  const auto cols = static_cast<std::size_t>(jobs[0].geometry.num_cols());
  for (const ReconJob& j : jobs) {
    j.geometry.validate();
    CSCV_CHECK_MSG(j.algorithm == algo, "batched jobs must share one algorithm");
    CSCV_CHECK(static_cast<std::size_t>(j.geometry.num_rows()) == rows);
    CSCV_CHECK(static_cast<std::size_t>(j.geometry.num_cols()) == cols);
    CSCV_CHECK_MSG(j.sinogram.size() == rows, "sinogram has " << j.sinogram.size()
                                                              << " elements, geometry wants "
                                                              << rows);
  }
  const std::size_t k = jobs.size();
  const int num_rhs = static_cast<int>(k);

  // Interleave the sinograms into one multi-RHS B and solve all columns in
  // lockstep over a single matrix traversal per iteration.
  util::AlignedVector<float> b(rows * k);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < rows; ++i) b[i * k + c] = jobs[c].sinogram[i];
  }
  util::AlignedVector<float> x(cols * k, 0.0F);

  util::WallTimer timer;
  std::vector<recon::RunStats> stats;
  switch (algo) {
    case Algorithm::kSirt:
    case Algorithm::kCgls: {
      CSCV_CHECK_MSG(plan != nullptr && plan->matrix() == entry.cscv.get() &&
                         plan->num_rhs() == num_rhs,
                     "batched iterative algorithms need a plan over the entry's CSCV "
                     "matrix with num_rhs == batch size");
      const recon::PlanOperator<float> op(*plan);
      std::vector<recon::SolveOptions> solve(k);
      for (std::size_t c = 0; c < k; ++c) solve[c] = jobs[c].solve;
      stats = algo == Algorithm::kSirt
                  ? recon::sirt_batch<float>(op, b, x, num_rhs, solve)
                  : recon::cgls_batch<float>(op, b, x, num_rhs, solve);
      break;
    }
    case Algorithm::kOsSart: {
      CSCV_CHECK_MSG(entry.csr != nullptr, "kOsSart entry is missing its CSR operator");
      std::vector<recon::OsSartOptions> opts(k);
      for (std::size_t c = 0; c < k; ++c) {
        opts[c].iterations = jobs[c].solve.iterations;
        opts[c].num_subsets = jobs[c].os_sart_subsets;
        opts[c].relaxation = jobs[c].solve.relaxation;
        opts[c].enforce_nonneg = jobs[c].solve.enforce_nonneg;
      }
      stats = recon::os_sart_batch<float>(*entry.csr, entry.layout, b, x, num_rhs, opts);
      break;
    }
    case Algorithm::kFbp: break;  // unreachable, checked above
  }
  const double solve_seconds = timer.seconds();

  std::vector<ReconResult> out(k);
  for (std::size_t c = 0; c < k; ++c) {
    ReconResult& r = out[c];
    r.tag = jobs[c].tag;
    r.volume.resize(cols);
    for (std::size_t i = 0; i < cols; ++i) r.volume[i] = x[i * k + c];
    r.iterations_run = stats[c].iterations_run;
    if (!stats[c].residual_norms.empty()) r.final_residual = stats[c].residual_norms.back();
    r.solve_seconds = solve_seconds;  // shared: the fused solve ran once
    if (plan != nullptr) r.plan_stats = plan->stats();
    r.batch_size = num_rhs;
    r.batch_index = static_cast<int>(c);
    r.status = JobStatus::kOk;
  }
  return out;
}

ReconService::ReconService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache), queue_(options_.queue_capacity) {
  CSCV_CHECK_MSG(options_.num_workers >= 0, "num_workers must be >= 0");
  CSCV_CHECK_MSG(options_.omp_threads_per_worker >= 1,
                 "omp_threads_per_worker must be >= 1");
  CSCV_CHECK_MSG(options_.plans_per_worker >= 1, "plans_per_worker must be >= 1");
  CSCV_CHECK_MSG(options_.max_batch >= 1, "max_batch must be >= 1");
  CSCV_CHECK_MSG(options_.batch_window_seconds >= 0.0,
                 "batch_window_seconds must be >= 0");
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&ReconService::worker_main, this, i);
  }
}

ReconService::~ReconService() { shutdown(DrainMode::kDrain); }

void ReconService::resolve_without_running(Pending& p, JobStatus status) {
  ReconResult r;
  r.job_id = p.id;
  r.tag = p.job.tag;
  r.status = status;
  p.promise.set_value(std::move(r));
}

void ReconService::count_status(JobStatus status) {
  util::MutexLock lock(mu_);
  switch (status) {
    case JobStatus::kOk: ++stats_.completed; break;
    case JobStatus::kRejected: ++stats_.rejected; break;
    case JobStatus::kExpired: ++stats_.expired; break;
    case JobStatus::kCancelled: ++stats_.cancelled; break;
    case JobStatus::kFailed: ++stats_.failed; break;
  }
}

ReconService::Submitted ReconService::submit(ReconJob job) {
  Pending p;
  p.job = std::move(job);
  // QoS: an interactive job without its own deadline inherits the
  // service-wide interactive budget (0 = none configured).
  if (p.job.qos == QosClass::kInteractive && p.job.deadline_seconds <= 0.0 &&
      options_.interactive_deadline_seconds > 0.0) {
    p.job.deadline_seconds = options_.interactive_deadline_seconds;
  }
  p.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  p.submit_time = std::chrono::steady_clock::now();
  Submitted handle{p.id, p.promise.get_future()};
  {
    util::MutexLock lock(mu_);
    ++stats_.submitted;
    ++(p.job.qos == QosClass::kInteractive ? stats_.qos_interactive
                                           : stats_.qos_batch);
    // Registered before the push so cancel() can never observe a job that
    // is in the queue but unknown to it.
    queued_ids_.insert(p.id);
  }
  // Interactive jobs are admitted with kReject semantics no matter the
  // service-wide policy: a full queue answers immediately (bounded client
  // latency) instead of applying backpressure to the submitter.
  const bool reject_on_full = options_.admission == AdmissionPolicy::kReject ||
                              p.job.qos == QosClass::kInteractive;
  const PushResult admitted = reject_on_full ? queue_.try_push(p) : queue_.push(p);
  if (admitted != PushResult::kOk) {
    bool was_cancelled = false;
    {
      util::MutexLock lock(mu_);
      queued_ids_.erase(p.id);
      // A concurrent cancel() may have seen the id (registered above) and
      // returned true; that promises a kCancelled resolution, which wins
      // over kRejected even though try_push refused the job.
      was_cancelled = cancelled_.erase(p.id) > 0;
    }
    // The move in push() only happens on kOk, so `p` still owns the
    // promise and we can resolve the refusal ourselves.
    const JobStatus status =
        was_cancelled ? JobStatus::kCancelled : JobStatus::kRejected;
    count_status(status);
    resolve_without_running(p, status);
  }
  return handle;
}

bool ReconService::cancel(std::uint64_t job_id) {
  util::MutexLock lock(mu_);
  if (queued_ids_.count(job_id) == 0) return false;
  cancelled_.insert(job_id);
  return true;
}

ServiceStats ReconService::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

void ReconService::worker_main(int worker_index) {
  // An OpenMP ICV is per-thread: this caps only *this* worker's parallel
  // regions, so the pool as a whole uses workers * omp_threads_per_worker.
  util::set_num_threads(options_.omp_threads_per_worker);

  // Worker-local plan LRU, keyed on (matrix, num_rhs). Plans carry mutable
  // scratch, so they are never shared across workers; the entry shared_ptr
  // keeps the matrix under a plan alive even after the shared cache evicts
  // it. Eviction enforces the count cap and the byte budget together —
  // plan scratch scales with num_rhs, so wide batched plans are charged
  // what they actually hold — while the plan just used always survives.
  struct WorkerPlan {
    std::shared_ptr<const SystemMatrixEntry> entry;
    int num_rhs = 1;
    std::unique_ptr<core::SpmvPlan<float>> plan;
  };
  std::list<WorkerPlan> plans;  // front = most recently used
  std::size_t plan_bytes = 0;
  core::PlanOptions plan_opts;
  plan_opts.threads = options_.omp_threads_per_worker;

  const auto acquire_plan = [&](const std::shared_ptr<const SystemMatrixEntry>& entry,
                                int num_rhs) -> const core::SpmvPlan<float>* {
    auto it = plans.begin();
    while (it != plans.end() &&
           !(it->entry->cscv.get() == entry->cscv.get() && it->num_rhs == num_rhs)) {
      ++it;
    }
    if (it != plans.end()) {
      plans.splice(plans.begin(), plans, it);
    } else {
      core::PlanOptions opts = plan_opts;
      opts.num_rhs = num_rhs;
      WorkerPlan warm;
      warm.entry = entry;
      warm.num_rhs = num_rhs;
      warm.plan = std::make_unique<core::SpmvPlan<float>>(*entry->cscv, opts);
      plan_bytes += warm.plan->scratch_bytes();
      plans.push_front(std::move(warm));
      while (plans.size() > 1 &&
             (plans.size() > static_cast<std::size_t>(options_.plans_per_worker) ||
              (options_.plan_bytes_per_worker > 0 &&
               plan_bytes > options_.plan_bytes_per_worker))) {
        plan_bytes -= plans.back().plan->scratch_bytes();
        plans.pop_back();
      }
    }
    return plans.front().plan.get();
  };

  // A popped job after its dequeue-time bookkeeping (id bookkeeping,
  // cancellation, queue wait, first deadline check).
  struct Member {
    Pending p;
    ReconResult meta;
  };
  const auto deadline_spent = [](const Pending& p,
                                 std::chrono::steady_clock::time_point now) {
    return p.job.deadline_seconds > 0.0 &&
           std::chrono::duration<double>(now - p.submit_time).count() >
               p.job.deadline_seconds;
  };
  // Counting before fulfilling a promise everywhere below: a caller woken
  // by get() must see the status already reflected in stats().
  const auto admit = [&](Pending&& p) -> std::optional<Member> {
    const auto dequeued = std::chrono::steady_clock::now();
    bool was_cancelled = false;
    {
      util::MutexLock lock(mu_);
      queued_ids_.erase(p.id);
      was_cancelled = cancelled_.erase(p.id) > 0;
    }
    if (was_cancelled) {
      count_status(JobStatus::kCancelled);
      resolve_without_running(p, JobStatus::kCancelled);
      return std::nullopt;
    }
    Member m;
    m.meta.job_id = p.id;
    m.meta.tag = p.job.tag;
    m.meta.worker = worker_index;
    m.meta.queue_wait_seconds =
        std::chrono::duration<double>(dequeued - p.submit_time).count();
    if (deadline_spent(p, dequeued)) {
      m.meta.status = JobStatus::kExpired;
      count_status(JobStatus::kExpired);
      p.promise.set_value(std::move(m.meta));
      return std::nullopt;
    }
    m.p = std::move(p);
    return m;
  };

  std::optional<Member> carry;  // first non-fusable job met while gathering
  for (;;) {
    std::vector<Member> batch;
    if (carry.has_value()) {
      batch.push_back(std::move(*carry));
      carry.reset();
    } else {
      Pending p;
      if (!queue_.pop(p)) break;  // carry is always consumed before pop
      auto m = admit(std::move(p));
      if (!m.has_value()) continue;
      batch.push_back(std::move(*m));
    }

    const Algorithm lead_algo = batch.front().p.job.algorithm;
    const int lead_subsets = batch.front().p.job.os_sart_subsets;
    if (options_.max_batch > 1 && lead_algo != Algorithm::kFbp) {
      const MatrixKey lead_key = batch.front().p.job.matrix_key();
      bool has_deadline = batch.front().p.job.deadline_seconds > 0.0;
      bool counted_debatch = false;
      const auto window_end =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.batch_window_seconds));
      while (static_cast<int>(batch.size()) < options_.max_batch) {
        // Deadline-aware de-batching: once any gathered job carries a
        // deadline, stop waiting for fill — only drain jobs already
        // queued (zero-timeout polls), so an interactive job never idles
        // behind the batching window.
        if (has_deadline && !counted_debatch) {
          util::MutexLock lock(mu_);
          ++stats_.debatched;
          counted_debatch = true;
        }
        auto wait = std::chrono::steady_clock::duration::zero();
        if (!has_deadline) {
          const auto now = std::chrono::steady_clock::now();
          if (now < window_end) wait = window_end - now;
        }
        Pending next;
        if (!queue_.try_pop_for(next, wait)) break;  // window spent or closed
        auto m = admit(std::move(next));
        if (!m.has_value()) continue;
        const ReconJob& j = m->p.job;
        const bool fusable =
            j.algorithm == lead_algo && j.matrix_key() == lead_key &&
            (lead_algo != Algorithm::kOsSart || j.os_sart_subsets == lead_subsets);
        if (!fusable) {
          carry = std::move(*m);  // leads its own batch next iteration
          break;
        }
        has_deadline = has_deadline || j.deadline_seconds > 0.0;
        batch.push_back(std::move(*m));
      }
    }

    try {
      const SystemMatrixCache::Acquired acquired =
          cache_.get_or_build(batch.front().p.job.matrix_key());
      for (Member& m : batch) {
        m.meta.cache_hit = acquired.hit;
        m.meta.acquire_seconds = acquired.seconds;
      }
      // A cold build can be the slow part; re-check every member's budget
      // before committing to the solve (which is never interrupted). An
      // expired member drops out and the batch narrows around it.
      const auto post_acquire = std::chrono::steady_clock::now();
      for (auto it = batch.begin(); it != batch.end();) {
        if (deadline_spent(it->p, post_acquire)) {
          it->meta.status = JobStatus::kExpired;
          count_status(JobStatus::kExpired);
          it->p.promise.set_value(std::move(it->meta));
          it = batch.erase(it);
        } else {
          ++it;
        }
      }
      if (batch.empty()) continue;

      const core::SpmvPlan<float>* plan = nullptr;
      if (lead_algo != Algorithm::kOsSart) {
        plan = acquire_plan(acquired.entry, static_cast<int>(batch.size()));
      }

      if (batch.size() == 1) {
        Member& m = batch.front();
        ReconResult r = execute_job(m.p.job, *acquired.entry, plan);
        r.job_id = m.meta.job_id;
        r.worker = m.meta.worker;
        r.cache_hit = m.meta.cache_hit;
        r.queue_wait_seconds = m.meta.queue_wait_seconds;
        r.acquire_seconds = m.meta.acquire_seconds;
        count_status(r.status);
        m.p.promise.set_value(std::move(r));
      } else {
        std::vector<ReconJob> jobs;
        jobs.reserve(batch.size());
        for (Member& m : batch) jobs.push_back(std::move(m.p.job));
        std::vector<ReconResult> results = execute_job_batch(jobs, *acquired.entry, plan);
        {
          util::MutexLock lock(mu_);
          ++stats_.batches;
          stats_.batched_jobs += batch.size();
        }
        for (std::size_t i = 0; i < batch.size(); ++i) {
          ReconResult& r = results[i];
          r.job_id = batch[i].meta.job_id;
          r.worker = batch[i].meta.worker;
          r.cache_hit = batch[i].meta.cache_hit;
          r.queue_wait_seconds = batch[i].meta.queue_wait_seconds;
          r.acquire_seconds = batch[i].meta.acquire_seconds;
          count_status(r.status);
          batch[i].p.promise.set_value(std::move(r));
        }
      }
    } catch (const std::exception& e) {
      // Nothing in the try block resolves a promise before the point that
      // can throw, so every member still owed a result gets kFailed.
      for (Member& m : batch) {
        m.meta.status = JobStatus::kFailed;
        m.meta.error = e.what();
        count_status(JobStatus::kFailed);
        m.p.promise.set_value(std::move(m.meta));
      }
    }
  }
}

void ReconService::shutdown(DrainMode mode) {
  util::MutexLock guard(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;

  queue_.close();  // producers refused; workers keep draining
  if (mode == DrainMode::kAbort) {
    for (Pending& p : queue_.drain()) {
      {
        util::MutexLock lock(mu_);
        queued_ids_.erase(p.id);
        cancelled_.erase(p.id);
      }
      count_status(JobStatus::kCancelled);
      resolve_without_running(p, JobStatus::kCancelled);
    }
  }
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  // With num_workers == 0 (or an abort racing a pop) jobs can still be
  // queued here; every admitted future must resolve before we return.
  for (Pending& p : queue_.drain()) {
    {
      util::MutexLock lock(mu_);
      queued_ids_.erase(p.id);
      cancelled_.erase(p.id);
    }
    count_status(JobStatus::kCancelled);
    resolve_without_running(p, JobStatus::kCancelled);
  }
}

}  // namespace cscv::pipeline
