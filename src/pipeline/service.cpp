#include "pipeline/service.hpp"

#include <algorithm>
#include <exception>
#include <list>
#include <utility>

#include "recon/fbp.hpp"
#include "recon/operators.hpp"
#include "recon/os_sart.hpp"
#include "util/parallel.hpp"
#include "util/timing.hpp"

namespace cscv::pipeline {

util::Json ServiceStats::to_json() const {
  util::Json j = util::Json::object();
  j["submitted"] = util::Json(submitted);
  j["completed"] = util::Json(completed);
  j["rejected"] = util::Json(rejected);
  j["expired"] = util::Json(expired);
  j["cancelled"] = util::Json(cancelled);
  j["failed"] = util::Json(failed);
  return j;
}

ReconResult execute_job(const ReconJob& job, const SystemMatrixEntry& entry,
                        const core::SpmvPlan<float>* plan) {
  job.geometry.validate();
  const auto rows = static_cast<std::size_t>(job.geometry.num_rows());
  const auto cols = static_cast<std::size_t>(job.geometry.num_cols());
  CSCV_CHECK_MSG(job.sinogram.size() == rows, "sinogram has " << job.sinogram.size()
                                                              << " elements, geometry wants "
                                                              << rows);
  ReconResult r;
  r.tag = job.tag;
  util::WallTimer timer;
  r.volume.assign(cols, 0.0F);
  switch (job.algorithm) {
    case Algorithm::kFbp: {
      CSCV_CHECK_MSG(plan != nullptr && plan->matrix() == entry.cscv.get(),
                     "kFbp needs a plan over the entry's CSCV matrix");
      const recon::PlanOperator<float> op(*plan);
      r.volume = recon::fbp<float>(job.geometry, op, job.sinogram);
      r.iterations_run = 1;
      break;
    }
    case Algorithm::kSirt:
    case Algorithm::kCgls: {
      CSCV_CHECK_MSG(plan != nullptr && plan->matrix() == entry.cscv.get(),
                     "iterative algorithms need a plan over the entry's CSCV matrix");
      const recon::PlanOperator<float> op(*plan);
      const recon::RunStats stats =
          job.algorithm == Algorithm::kSirt
              ? recon::sirt<float>(op, job.sinogram, r.volume, job.solve)
              : recon::cgls<float>(op, job.sinogram, r.volume, job.solve);
      r.iterations_run = stats.iterations_run;
      if (!stats.residual_norms.empty()) r.final_residual = stats.residual_norms.back();
      break;
    }
    case Algorithm::kOsSart: {
      CSCV_CHECK_MSG(entry.csr != nullptr, "kOsSart entry is missing its CSR operator");
      recon::OsSartOptions opts;
      opts.iterations = job.solve.iterations;
      opts.num_subsets = job.os_sart_subsets;
      opts.relaxation = job.solve.relaxation;
      opts.enforce_nonneg = job.solve.enforce_nonneg;
      const recon::RunStats stats =
          recon::os_sart<float>(*entry.csr, entry.layout, job.sinogram, r.volume, opts);
      r.iterations_run = stats.iterations_run;
      if (!stats.residual_norms.empty()) r.final_residual = stats.residual_norms.back();
      break;
    }
  }
  r.solve_seconds = timer.seconds();
  if (plan != nullptr) r.plan_stats = plan->stats();
  r.status = JobStatus::kOk;
  return r;
}

ReconService::ReconService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache), queue_(options_.queue_capacity) {
  CSCV_CHECK_MSG(options_.num_workers >= 0, "num_workers must be >= 0");
  CSCV_CHECK_MSG(options_.omp_threads_per_worker >= 1,
                 "omp_threads_per_worker must be >= 1");
  CSCV_CHECK_MSG(options_.plans_per_worker >= 1, "plans_per_worker must be >= 1");
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&ReconService::worker_main, this, i);
  }
}

ReconService::~ReconService() { shutdown(DrainMode::kDrain); }

void ReconService::resolve_without_running(Pending& p, JobStatus status) {
  ReconResult r;
  r.job_id = p.id;
  r.tag = p.job.tag;
  r.status = status;
  p.promise.set_value(std::move(r));
}

void ReconService::count_status(JobStatus status) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (status) {
    case JobStatus::kOk: ++stats_.completed; break;
    case JobStatus::kRejected: ++stats_.rejected; break;
    case JobStatus::kExpired: ++stats_.expired; break;
    case JobStatus::kCancelled: ++stats_.cancelled; break;
    case JobStatus::kFailed: ++stats_.failed; break;
  }
}

ReconService::Submitted ReconService::submit(ReconJob job) {
  Pending p;
  p.job = std::move(job);
  p.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  p.submit_time = std::chrono::steady_clock::now();
  Submitted handle{p.id, p.promise.get_future()};
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    // Registered before the push so cancel() can never observe a job that
    // is in the queue but unknown to it.
    queued_ids_.insert(p.id);
  }
  const PushResult admitted = options_.admission == AdmissionPolicy::kReject
                                  ? queue_.try_push(p)
                                  : queue_.push(p);
  if (admitted != PushResult::kOk) {
    bool was_cancelled = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queued_ids_.erase(p.id);
      // A concurrent cancel() may have seen the id (registered above) and
      // returned true; that promises a kCancelled resolution, which wins
      // over kRejected even though try_push refused the job.
      was_cancelled = cancelled_.erase(p.id) > 0;
    }
    // The move in push() only happens on kOk, so `p` still owns the
    // promise and we can resolve the refusal ourselves.
    const JobStatus status =
        was_cancelled ? JobStatus::kCancelled : JobStatus::kRejected;
    count_status(status);
    resolve_without_running(p, status);
  }
  return handle;
}

bool ReconService::cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queued_ids_.count(job_id) == 0) return false;
  cancelled_.insert(job_id);
  return true;
}

ServiceStats ReconService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ReconService::worker_main(int worker_index) {
  // An OpenMP ICV is per-thread: this caps only *this* worker's parallel
  // regions, so the pool as a whole uses workers * omp_threads_per_worker.
  util::set_num_threads(options_.omp_threads_per_worker);

  // Worker-local plan LRU. Plans carry mutable scratch, so they are never
  // shared across workers; the entry shared_ptr keeps the matrix under a
  // plan alive even after the shared cache evicts it.
  struct WorkerPlan {
    std::shared_ptr<const SystemMatrixEntry> entry;
    std::unique_ptr<core::SpmvPlan<float>> plan;
  };
  std::list<WorkerPlan> plans;  // front = most recently used
  core::PlanOptions plan_opts;
  plan_opts.threads = options_.omp_threads_per_worker;

  Pending p;
  while (queue_.pop(p)) {
    const auto dequeued = std::chrono::steady_clock::now();
    bool was_cancelled = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queued_ids_.erase(p.id);
      was_cancelled = cancelled_.erase(p.id) > 0;
    }
    if (was_cancelled) {
      // Count before fulfilling the promise: a caller woken by get() must
      // see the status already reflected in stats().
      count_status(JobStatus::kCancelled);
      resolve_without_running(p, JobStatus::kCancelled);
      continue;
    }

    ReconResult meta;
    meta.job_id = p.id;
    meta.tag = p.job.tag;
    meta.worker = worker_index;
    meta.queue_wait_seconds =
        std::chrono::duration<double>(dequeued - p.submit_time).count();

    const auto deadline_spent = [&p](std::chrono::steady_clock::time_point now) {
      return p.job.deadline_seconds > 0.0 &&
             std::chrono::duration<double>(now - p.submit_time).count() >
                 p.job.deadline_seconds;
    };
    if (deadline_spent(dequeued)) {
      meta.status = JobStatus::kExpired;
      count_status(JobStatus::kExpired);
      p.promise.set_value(std::move(meta));
      continue;
    }

    try {
      const SystemMatrixCache::Acquired acquired = cache_.get_or_build(p.job.matrix_key());
      meta.cache_hit = acquired.hit;
      meta.acquire_seconds = acquired.seconds;
      // A cold build can be the slow part; re-check the budget before
      // committing to the solve (which is never interrupted).
      if (deadline_spent(std::chrono::steady_clock::now())) {
        meta.status = JobStatus::kExpired;
        count_status(JobStatus::kExpired);
        p.promise.set_value(std::move(meta));
        continue;
      }

      const core::SpmvPlan<float>* plan = nullptr;
      if (p.job.algorithm != Algorithm::kOsSart) {
        auto it = plans.begin();
        while (it != plans.end() && it->entry->cscv.get() != acquired.entry->cscv.get()) {
          ++it;
        }
        if (it != plans.end()) {
          plans.splice(plans.begin(), plans, it);
        } else {
          WorkerPlan warm;
          warm.entry = acquired.entry;
          warm.plan = std::make_unique<core::SpmvPlan<float>>(*acquired.entry->cscv,
                                                              plan_opts);
          plans.push_front(std::move(warm));
          while (plans.size() > static_cast<std::size_t>(options_.plans_per_worker)) {
            plans.pop_back();
          }
        }
        plan = plans.front().plan.get();
      }

      ReconResult r = execute_job(p.job, *acquired.entry, plan);
      r.job_id = meta.job_id;
      r.worker = meta.worker;
      r.cache_hit = meta.cache_hit;
      r.queue_wait_seconds = meta.queue_wait_seconds;
      r.acquire_seconds = meta.acquire_seconds;
      count_status(r.status);
      p.promise.set_value(std::move(r));
    } catch (const std::exception& e) {
      meta.status = JobStatus::kFailed;
      meta.error = e.what();
      count_status(JobStatus::kFailed);
      p.promise.set_value(std::move(meta));
    }
  }
}

void ReconService::shutdown(DrainMode mode) {
  std::lock_guard<std::mutex> guard(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;

  queue_.close();  // producers refused; workers keep draining
  if (mode == DrainMode::kAbort) {
    for (Pending& p : queue_.drain()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        queued_ids_.erase(p.id);
        cancelled_.erase(p.id);
      }
      count_status(JobStatus::kCancelled);
      resolve_without_running(p, JobStatus::kCancelled);
    }
  }
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  // With num_workers == 0 (or an abort racing a pop) jobs can still be
  // queued here; every admitted future must resolve before we return.
  for (Pending& p : queue_.drain()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queued_ids_.erase(p.id);
      cancelled_.erase(p.id);
    }
    count_status(JobStatus::kCancelled);
    resolve_without_running(p, JobStatus::kCancelled);
  }
}

}  // namespace cscv::pipeline
