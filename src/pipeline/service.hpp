// ReconService — the concurrent reconstruction front-end.
//
// Wires the three pipeline pieces into a serving loop:
//
//   submit(job) ──► BoundedQueue ──► worker pool ──► future<ReconResult>
//                                        │
//                                        └──► SystemMatrixCache (shared,
//                                             single-flight, LRU)
//
// Concurrency model:
//   * Admission is bounded: kBlock applies backpressure to the submitter,
//     kReject resolves the returned future immediately with kRejected —
//     the job never enters the queue.
//   * Each worker is a plain std::thread that pins its own OpenMP thread
//     count (an OMP ICV is per-thread, so workers can't oversubscribe each
//     other) and owns a small LRU of SpmvPlans — a plan's scratch forbids
//     sharing one instance across threads, so plans are strictly
//     worker-local while the matrices under them are shared via the cache.
//     After the first job per (worker, operator), the warm loop performs
//     no allocation: queue pop, cache hit, plan reuse, solve.
//   * Determinism: with omp_threads_per_worker == 1 a job's volume is
//     bitwise identical to running execute_job() serially with a
//     threads=1 plan, regardless of worker count, queue order, or cache
//     state — summation order is fixed by the plan shape, which is part of
//     neither the queue nor the cache. The stress test asserts this.
//   * shutdown(kDrain) stops admission, lets workers finish everything
//     queued, then joins. shutdown(kAbort) additionally fails the
//     still-queued jobs as kCancelled. The destructor drains.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <span>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/plan.hpp"
#include "pipeline/job.hpp"
#include "pipeline/matrix_cache.hpp"
#include "pipeline/queue.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"

namespace cscv::pipeline {

/// What happens when submit() meets a full queue.
enum class AdmissionPolicy { kBlock, kReject };

/// How shutdown treats jobs still queued: finish them (kDrain) or resolve
/// them as kCancelled (kAbort).
enum class DrainMode { kDrain, kAbort };

struct ServiceOptions {
  /// Worker threads. 0 is a valid degenerate mode — jobs queue but nothing
  /// runs them — used by admission/cancellation tests that need
  /// deterministic queue occupancy.
  int num_workers = 2;
  std::size_t queue_capacity = 32;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// OpenMP threads *inside* each worker's solves. Keep at 1 unless the
  /// pool is smaller than the machine; workers * omp_threads_per_worker
  /// should not exceed the core count.
  int omp_threads_per_worker = 1;
  /// Plans each worker keeps warm (per distinct operator and batch
  /// width), LRU-evicted.
  int plans_per_worker = 4;
  /// Byte budget for a worker's plan-LRU scratch. Large-num_rhs plans
  /// carry num_rhs times the y~ scratch, so a count cap alone would let a
  /// few wide plans blow a worker's memory; the byte cap evicts past the
  /// budget (the most recent plan is always kept). 0 = no byte cap.
  std::size_t plan_bytes_per_worker = 0;
  /// Jobs a worker may fuse into one batched multi-RHS solve. 1 disables
  /// batching. Only queued jobs agreeing on system-matrix key (and subset
  /// count for kOsSart) fuse; kFbp never fuses.
  int max_batch = 1;
  /// How long a worker holds its first job waiting for batch-mates before
  /// running with what it has (ignored when max_batch == 1). The window
  /// is deadline-aware: as soon as any gathered job carries a deadline,
  /// the worker stops waiting and only drains jobs already queued — an
  /// interactive job never idles for batch fill.
  double batch_window_seconds = 0.05;
  /// Deadline granted to interactive-class jobs that carry none of their
  /// own (QosClass::kInteractive, docs/SERVICE.md). 0 grants nothing.
  /// Batch jobs are never given an implicit deadline.
  double interactive_deadline_seconds = 0.0;
  SystemMatrixCache::Options cache{};
};

struct ServiceStats {
  std::uint64_t submitted = 0;  // every submit() call
  std::uint64_t completed = 0;  // resolved kOk
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;       // fused executions of >= 2 jobs
  std::uint64_t batched_jobs = 0;  // jobs that ran inside such executions
  std::uint64_t debatched = 0;     // batch windows skipped because a
                                   // gathered job carried a deadline
  std::uint64_t qos_interactive = 0;  // submits per QoS class
  std::uint64_t qos_batch = 0;

  [[nodiscard]] util::Json to_json() const;
  /// Inverse of to_json; CheckError on missing counters. Used by clients
  /// consuming /stats.
  static ServiceStats from_json(const util::Json& j);
};

/// Runs one job against an acquired operator entry, synchronously on the
/// calling thread. `plan` is the execution plan for the plan-driven
/// algorithms (kFbp/kSirt/kCgls; must be a plan over *entry.cscv) and is
/// ignored by kOsSart (which runs on entry.csr). Fills the solve half of
/// the result (status/volume/iterations/residual/solve_seconds/plan_stats);
/// the service half (ids, waits, cache flags) belongs to the caller.
///
/// Exposed so tests and benches can produce the serial reference volumes
/// the service's outputs are compared against — same code path, no queue.
ReconResult execute_job(const ReconJob& job, const SystemMatrixEntry& entry,
                        const core::SpmvPlan<float>* plan);

/// Runs `jobs` — all sharing `entry`'s matrix key and one iterative
/// algorithm (kFbp never batches) — as one fused multi-RHS solve with
/// num_rhs == jobs.size(). For kSirt/kCgls `plan` must be a plan over
/// *entry.cscv built with num_rhs == jobs.size(); kOsSart ignores it and
/// runs on entry.csr. Returns one result per job, in order. Each job's
/// volume is bitwise identical to execute_job() on that job alone — the
/// contract that lets ReconService fuse queued jobs transparently.
std::vector<ReconResult> execute_job_batch(std::span<const ReconJob> jobs,
                                           const SystemMatrixEntry& entry,
                                           const core::SpmvPlan<float>* plan);

class ReconService {
 public:
  explicit ReconService(ServiceOptions options = {});
  ~ReconService();  // shutdown(kDrain)

  ReconService(const ReconService&) = delete;
  ReconService& operator=(const ReconService&) = delete;

  /// Handle returned by submit(): the service-assigned job id (usable with
  /// cancel()) plus the future carrying the eventual result.
  struct Submitted {
    std::uint64_t id = 0;
    std::future<ReconResult> result;
  };

  /// Admits a job. Always returns a valid future: admitted jobs resolve
  /// when a worker finishes them; refused jobs (queue full under kReject,
  /// or the service is shutting down) resolve immediately with kRejected.
  Submitted submit(ReconJob job);

  /// Best-effort cancellation of a job that is still queued. True when the
  /// job will resolve as kCancelled instead of running; false when it
  /// already started, finished, or was never admitted.
  bool cancel(std::uint64_t job_id);

  /// Idempotent. Stops admission, handles queued jobs per `mode`, joins
  /// the workers. Every admitted future is resolved before this returns.
  void shutdown(DrainMode mode = DrainMode::kDrain);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] SystemMatrixCache& cache() { return cache_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct Pending {
    ReconJob job;
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point submit_time{};
    std::promise<ReconResult> promise;
  };

  void worker_main(int worker_index);
  /// Resolves a pending job with a no-run status (rejected/expired/...).
  static void resolve_without_running(Pending& p, JobStatus status);
  /// Takes mu_ itself — never call with mu_ already held.
  void count_status(JobStatus status) CSCV_EXCLUDES(mu_);

  ServiceOptions options_;
  SystemMatrixCache cache_;
  BoundedQueue<Pending> queue_;
  std::atomic<std::uint64_t> next_id_{1};

  mutable util::Mutex mu_;
  ServiceStats stats_ CSCV_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> queued_ids_ CSCV_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> cancelled_ CSCV_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
  // Serializes shutdown() callers; held across the worker joins, which take
  // mu_ — the one nested lock order in the service (docs/CONCURRENCY.md).
  util::Mutex shutdown_mu_ CSCV_ACQUIRED_BEFORE(mu_);
  bool shut_down_ CSCV_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace cscv::pipeline
