#include "pipeline/matrix_cache.hpp"

#include <exception>
#include <filesystem>
#include <limits>
#include <sstream>
#include <utility>

#include "core/serialize.hpp"
#include "ct/system_matrix.hpp"
#include "sparse/convert.hpp"
#include "util/timing.hpp"

namespace cscv::pipeline {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kFbp: return "fbp";
    case Algorithm::kSirt: return "sirt";
    case Algorithm::kCgls: return "cgls";
    case Algorithm::kOsSart: return "ossart";
  }
  return "?";
}

Algorithm algorithm_from_name(std::string_view name) {
  if (name == "fbp") return Algorithm::kFbp;
  if (name == "sirt") return Algorithm::kSirt;
  if (name == "cgls") return Algorithm::kCgls;
  if (name == "ossart") return Algorithm::kOsSart;
  CSCV_CHECK_MSG(false, "unknown algorithm \"" << std::string(name)
                                               << "\" (want fbp|sirt|cgls|ossart)");
  return Algorithm::kSirt;  // unreachable
}

const char* variant_name(core::CscvMatrix<float>::Variant v) {
  return v == core::CscvMatrix<float>::Variant::kZ ? "z" : "m";
}

core::CscvMatrix<float>::Variant variant_from_name(std::string_view name) {
  if (name == "m") return core::CscvMatrix<float>::Variant::kM;
  if (name == "z") return core::CscvMatrix<float>::Variant::kZ;
  CSCV_CHECK_MSG(false, "unknown CSCV variant \"" << std::string(name) << "\" (want m|z)");
  return core::CscvMatrix<float>::Variant::kM;  // unreachable
}

std::string MatrixKey::fingerprint() const {
  std::ostringstream os;
  // max_digits10 round-trips the angle doubles exactly, so two keys collide
  // only when the geometries are bit-identical.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "par" << geometry.image_size << 'x' << geometry.num_bins << 'x'
     << geometry.num_views << "-a" << geometry.start_angle_deg << "-d"
     << geometry.delta_angle_deg << "-v" << cscv.s_vvec << 'i' << cscv.s_imgb << 'g'
     << cscv.s_vxg << '-' << core::reference_name(cscv.reference) << '-'
     << core::vxg_order_name(cscv.order)
     << (variant == core::CscvMatrix<float>::Variant::kZ ? "-z-" : "-m-")
     << algorithm_name(algorithm);
  // Suffix only when non-default: fp32/eps=0 keys keep their pre-precision
  // fingerprints, so existing spill files restore without a rebuild.
  if (value_type != core::ValueType::kF32) {
    os << '-' << core::value_type_name(value_type);
  }
  if (sparsify_eps > 0.0) os << "-e" << sparsify_eps;
  return os.str();
}

std::size_t SystemMatrixEntry::bytes() const {
  std::size_t total = 0;
  if (cscv) total += cscv->matrix_bytes();
  if (csr) total += csr->matrix_bytes();
  return total;
}

util::Json CacheStats::to_json() const {
  util::Json j = util::Json::object();
  j["hits"] = util::Json(hits);
  j["misses"] = util::Json(misses);
  j["single_flight_waits"] = util::Json(single_flight_waits);
  j["builds"] = util::Json(builds);
  j["restores"] = util::Json(restores);
  j["evictions"] = util::Json(evictions);
  j["spills"] = util::Json(spills);
  j["hit_rate"] = util::Json(hit_rate());
  j["resident_bytes"] = util::Json(resident_bytes);
  j["resident_entries"] = util::Json(resident_entries);
  return j;
}

CacheStats CacheStats::from_json(const util::Json& j) {
  CacheStats s;
  s.hits = static_cast<std::uint64_t>(j.at("hits").as_int());
  s.misses = static_cast<std::uint64_t>(j.at("misses").as_int());
  s.single_flight_waits =
      static_cast<std::uint64_t>(j.at("single_flight_waits").as_int());
  s.builds = static_cast<std::uint64_t>(j.at("builds").as_int());
  s.restores = static_cast<std::uint64_t>(j.at("restores").as_int());
  s.evictions = static_cast<std::uint64_t>(j.at("evictions").as_int());
  s.spills = static_cast<std::uint64_t>(j.at("spills").as_int());
  s.resident_bytes = static_cast<std::size_t>(j.at("resident_bytes").as_int());
  s.resident_entries = static_cast<std::size_t>(j.at("resident_entries").as_int());
  return s;
}

SystemMatrixCache::SystemMatrixCache(Options options) : options_(std::move(options)) {
  CSCV_CHECK_MSG(options_.budget_bytes > 0, "cache budget must be positive");
}

std::string SystemMatrixCache::spill_path(const MatrixKey& key) const {
  CSCV_CHECK_MSG(!options_.spill_dir.empty(), "cache has no spill_dir configured");
  return options_.spill_dir + "/" + key.fingerprint() + ".cscv";
}

std::shared_ptr<SystemMatrixEntry> SystemMatrixCache::build_entry(const MatrixKey& key) {
  key.geometry.validate();
  key.cscv.validate();
  util::WallTimer timer;
  auto entry = std::make_shared<SystemMatrixEntry>();
  entry->geometry = key.geometry;
  entry->layout = core::OperatorLayout::from_geometry(key.geometry);
  entry->algorithm = key.algorithm;
  const auto csc = ct::build_system_matrix_csc<float>(key.geometry);
  auto cscv =
      core::CscvMatrix<float>::build(csc, entry->layout, key.cscv, key.variant);
  // Footprint reduction happens build-side so every consumer of the entry
  // (and its spill file) sees the same certified operator: sparsify first —
  // dropping in fp32 keeps the certificate exact — then narrow the survivors.
  if (key.sparsify_eps > 0.0) cscv.sparsify(key.sparsify_eps);
  if (key.value_type != core::ValueType::kF32) cscv.convert_values(key.value_type);
  entry->cscv = std::make_shared<const core::CscvMatrix<float>>(std::move(cscv));
  if (key.algorithm == Algorithm::kOsSart) {
    entry->csr = std::make_shared<const sparse::CsrMatrix<float>>(sparse::csr_from_csc(csc));
  }
  entry->build_seconds = timer.seconds();
  return entry;
}

std::shared_ptr<SystemMatrixEntry> SystemMatrixCache::try_restore(
    const MatrixKey& key) const {
  // OS-SART entries are CSR-driven and CSR is not spilled, so a restore
  // would still have to run the expensive CSC build — not worth a file.
  if (options_.spill_dir.empty() || key.algorithm == Algorithm::kOsSart) return nullptr;
  const std::string path = spill_path(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return nullptr;
  try {
    util::WallTimer timer;
    // load_cscv runs the mandatory cheap invariant verify; a truncated or
    // bit-flipped spill file throws here and we rebuild from scratch.
    auto m = core::load_cscv_file<float>(path);
    const auto layout = core::OperatorLayout::from_geometry(key.geometry);
    const bool matches = m.params() == key.cscv && m.variant() == key.variant &&
                         m.value_type() == key.value_type &&
                         m.sparsify_eps() == key.sparsify_eps &&
                         m.layout().image_size == layout.image_size &&
                         m.layout().num_bins == layout.num_bins &&
                         m.layout().num_views == layout.num_views;
    if (!matches) return nullptr;  // stale or foreign file under our name
    auto entry = std::make_shared<SystemMatrixEntry>();
    entry->geometry = key.geometry;
    entry->layout = layout;
    entry->algorithm = key.algorithm;
    entry->restored_from_spill = true;
    entry->cscv = std::make_shared<const core::CscvMatrix<float>>(std::move(m));
    entry->build_seconds = timer.seconds();
    return entry;
  } catch (const std::exception&) {
    // CheckError from the invariant verify, bad_alloc on an oversized file,
    // iostream/filesystem failures — any unusable spill degrades to a
    // rebuild rather than failing the job.
    return nullptr;
  }
}

void SystemMatrixCache::touch_locked(const std::string& fingerprint) {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (*it == fingerprint) {
      lru_.splice(lru_.begin(), lru_, it);
      return;
    }
  }
}

std::vector<std::shared_ptr<const SystemMatrixEntry>> SystemMatrixCache::evict_to_locked(
    std::size_t budget, const std::string& keep) {
  std::vector<std::shared_ptr<const SystemMatrixEntry>> victims;
  while (resident_bytes_ > budget && !lru_.empty() && lru_.back() != keep) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = slots_.find(victim);
    if (it == slots_.end()) continue;
    const std::shared_ptr<const SystemMatrixEntry> entry = it->second->entry;
    slots_.erase(it);
    if (entry) {
      resident_bytes_ -= std::min(resident_bytes_, entry->bytes());
      ++stats_.evictions;
      if (!options_.spill_dir.empty() && entry->algorithm != Algorithm::kOsSart) {
        victims.push_back(entry);
      }
    }
  }
  return victims;
}

void SystemMatrixCache::spill_entries(
    const std::vector<std::shared_ptr<const SystemMatrixEntry>>& victims) {
  for (const auto& entry : victims) {
    try {
      std::filesystem::create_directories(options_.spill_dir);
      MatrixKey key{entry->geometry, entry->cscv->params(), entry->cscv->variant(),
                    entry->algorithm, entry->cscv->value_type(),
                    entry->cscv->sparsify_eps()};
      core::save_cscv_file(spill_path(key), *entry->cscv);
      util::MutexLock lock(mu_);
      ++stats_.spills;
    } catch (const std::exception&) {
      // Spill is an optimization; a full-disk or unwritable directory
      // must not take the serving path down. The entry is simply gone.
    }
  }
}

SystemMatrixCache::Acquired SystemMatrixCache::get_or_build(const MatrixKey& key) {
  util::WallTimer timer;
  const std::string fp = key.fingerprint();
  std::shared_ptr<Slot> slot;
  {
    util::MutexLock lock(mu_);
    auto it = slots_.find(fp);
    if (it != slots_.end()) {
      slot = it->second;
      if (!slot->building) {
        ++stats_.hits;
        touch_locked(fp);
        return {slot->entry, true, false, timer.seconds()};
      }
      // Single-flight: someone else is building this key right now — wait
      // for that one build instead of starting a duplicate.
      ++stats_.single_flight_waits;
      while (slot->building) ready_.wait(mu_);
      if (slot->error) std::rethrow_exception(slot->error);
      touch_locked(fp);
      return {slot->entry, false, false, timer.seconds()};
    }
    ++stats_.misses;
    slot = std::make_shared<Slot>();
    slots_.emplace(fp, slot);
  }

  // Build (or restore) outside the lock, so distinct keys build in parallel
  // and lookups of ready entries never stall behind a build.
  std::shared_ptr<SystemMatrixEntry> entry;
  bool restored = false;
  try {
    entry = try_restore(key);
    restored = entry != nullptr;
    if (!entry) entry = build_entry(key);
  } catch (...) {
    util::MutexLock lock(mu_);
    slot->building = false;
    slot->error = std::current_exception();
    slots_.erase(fp);  // waiters rethrow via their slot ref; new calls retry
    ready_.notify_all();
    throw;
  }

  std::vector<std::shared_ptr<const SystemMatrixEntry>> victims;
  {
    util::MutexLock lock(mu_);
    slot->building = false;
    slot->entry = entry;
    if (restored) {
      ++stats_.restores;
    } else {
      ++stats_.builds;
    }
    lru_.push_front(fp);
    resident_bytes_ += entry->bytes();
    victims = evict_to_locked(options_.budget_bytes, fp);
    ready_.notify_all();
  }
  spill_entries(victims);
  return {std::move(entry), false, restored, timer.seconds()};
}

CacheStats SystemMatrixCache::stats() const {
  util::MutexLock lock(mu_);
  CacheStats s = stats_;
  s.resident_bytes = resident_bytes_;
  s.resident_entries = lru_.size();
  return s;
}

std::vector<std::string> SystemMatrixCache::resident_fingerprints() const {
  util::MutexLock lock(mu_);
  return {lru_.begin(), lru_.end()};
}

void SystemMatrixCache::clear() {
  // Budget 0 evicts everything ready; in-flight builds are untracked by
  // the LRU and publish normally. options_ itself stays untouched —
  // options() hands out an unsynchronized reference, so mutating the
  // budget here (even briefly) would be a data race against readers.
  std::vector<std::shared_ptr<const SystemMatrixEntry>> victims;
  {
    util::MutexLock lock(mu_);
    victims = evict_to_locked(0, "");
  }
  spill_entries(victims);
}

}  // namespace cscv::pipeline
