// SystemMatrixCache — shared, single-flight cache of built CT operators.
//
// Building a system matrix dominates end-to-end tomography service time
// once SpMV itself is fast (Marchesini et al., "Sparse Matrix-Based HPC
// Tomography"): one pixel-driven CSC build plus the CSCV conversion costs
// orders of magnitude more than the reconstruction it feeds. A service
// handling a stream of slices therefore lives or dies on operator reuse:
//
//   * keyed on (geometry, CscvParams, variant, algorithm) — everything that
//     changes the bytes of the built operator set;
//   * single-flight build deduplication: when N requests for the same key
//     arrive while nothing is cached, exactly one caller builds and the
//     other N-1 block on the in-flight slot, then share the result;
//   * byte-budget LRU: ready entries are evicted least-recently-used first
//     once the resident total exceeds the budget (a single entry larger
//     than the whole budget stays resident — a cache of one);
//   * optional disk spill: evicted entries write their CSCV half through
//     core::save_cscv, and a later miss restores via core::load_cscv —
//     which runs the mandatory cheap invariant verify on every load, so a
//     truncated or corrupted spill file falls back to a full rebuild
//     instead of serving garbage.
//
// Entries are immutable once published and handed out as shared_ptr, so
// eviction never invalidates an operator a worker is still reconstructing
// with — the entry dies when its last user lets go.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/format.hpp"
#include "core/layout.hpp"
#include "core/params.hpp"
#include "ct/geometry.hpp"
#include "sparse/csr.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"

namespace cscv::pipeline {

/// Reconstruction algorithm a job runs — part of the cache key because it
/// decides which operator representations an entry must carry (the
/// plan-driven algorithms need only the CSCV matrix; OS-SART needs CSR).
enum class Algorithm { kFbp, kSirt, kCgls, kOsSart };

[[nodiscard]] const char* algorithm_name(Algorithm a);
/// Inverse of algorithm_name; throws util::CheckError on unknown names.
[[nodiscard]] Algorithm algorithm_from_name(std::string_view name);

/// Wire names of the CSCV variant ("m" / "z", matching cscv_cli flags).
[[nodiscard]] const char* variant_name(core::CscvMatrix<float>::Variant v);
/// Inverse of variant_name; throws util::CheckError on unknown names.
[[nodiscard]] core::CscvMatrix<float>::Variant variant_from_name(std::string_view name);

/// Cache identity: two keys compare equal exactly when the built operator
/// sets would be byte-identical.
struct MatrixKey {
  ct::ParallelGeometry geometry;
  core::CscvParams cscv{};
  core::CscvMatrix<float>::Variant variant = core::CscvMatrix<float>::Variant::kM;
  Algorithm algorithm = Algorithm::kSirt;
  /// Value storage dtype of the built CSCV matrix (docs/PRECISION.md).
  core::ValueType value_type = core::ValueType::kF32;
  /// Certified sparsification threshold applied after the build; 0 keeps
  /// every stored coefficient.
  double sparsify_eps = 0.0;

  /// Stable, filesystem-safe serialization of the key — the map key and
  /// the spill file stem (docs/PIPELINE.md documents the format). Precision
  /// fields append a suffix only when non-default, so fingerprints (and
  /// spill files) from before the mixed-precision change stay valid.
  [[nodiscard]] std::string fingerprint() const;

  friend bool operator==(const MatrixKey&, const MatrixKey&) = default;
};

/// One resident operator set. Immutable after publication; shared between
/// the cache and every worker currently reconstructing with it.
struct SystemMatrixEntry {
  ct::ParallelGeometry geometry;
  core::OperatorLayout layout;
  Algorithm algorithm = Algorithm::kSirt;
  bool restored_from_spill = false;
  double build_seconds = 0.0;  // wall time of the build (or restore)

  /// The house format: forward via SpmvPlan::execute, backprojection via
  /// SpmvPlan::execute_transpose. Always present.
  std::shared_ptr<const core::CscvMatrix<float>> cscv;
  /// Row-major operator for OS-SART's row subsets; only built (and only
  /// counted against the budget) when algorithm == kOsSart.
  std::shared_ptr<const sparse::CsrMatrix<float>> csr;

  /// Budget-relevant footprint of the resident arrays.
  [[nodiscard]] std::size_t bytes() const;
};

struct CacheStats {
  std::uint64_t hits = 0;    // served instantly from a ready entry
  std::uint64_t misses = 0;  // this call built (or restored) the entry
  std::uint64_t single_flight_waits = 0;  // blocked on someone else's build
  std::uint64_t builds = 0;   // full builds performed (the stampede metric)
  std::uint64_t restores = 0; // rebuilt from a spill file instead
  std::uint64_t evictions = 0;
  std::uint64_t spills = 0;   // evictions that wrote a spill file
  std::size_t resident_bytes = 0;
  std::size_t resident_entries = 0;

  /// Fraction of lookups that never blocked: hits / all lookups.
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses + single_flight_waits;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  [[nodiscard]] util::Json to_json() const;
  /// Inverse of to_json (ignores the derived "hit_rate" field); CheckError
  /// on missing counters. Used by clients consuming /stats.
  static CacheStats from_json(const util::Json& j);
};

class SystemMatrixCache {
 public:
  struct Options {
    /// Resident-set ceiling. Eviction runs after each insertion until the
    /// total fits (the newest entry itself is never evicted).
    std::size_t budget_bytes = std::size_t{512} << 20;
    /// Directory for spill files; empty disables spill/restore. Created on
    /// first spill if missing.
    std::string spill_dir;
  };

  /// What one get_or_build call experienced.
  struct Acquired {
    std::shared_ptr<const SystemMatrixEntry> entry;
    bool hit = false;       // served without building or waiting
    bool restored = false;  // this call restored the entry from spill
    double seconds = 0.0;   // time spent inside the call
  };

  SystemMatrixCache() : SystemMatrixCache(Options{}) {}
  explicit SystemMatrixCache(Options options);

  /// Returns the entry for `key`, building it exactly once per residency no
  /// matter how many threads ask concurrently. Throws whatever the build
  /// threw (waiters receive the same error; the slot is cleared so a later
  /// call retries).
  Acquired get_or_build(const MatrixKey& key);

  [[nodiscard]] CacheStats stats() const;
  /// Resident keys, most-recently-used first (tests assert eviction order).
  [[nodiscard]] std::vector<std::string> resident_fingerprints() const;
  /// Drops every ready entry (spilling per policy). In-flight builds finish
  /// and publish normally.
  void clear();

  [[nodiscard]] const Options& options() const { return options_; }
  /// Spill file path for a key (exposed so tests can corrupt/inspect it).
  [[nodiscard]] std::string spill_path(const MatrixKey& key) const;

 private:
  // Slot fields are written by the builder and read by waiters, all under
  // the cache's mu_ — but a nested struct cannot name the enclosing
  // object's mutex in a CSCV_GUARDED_BY, so the invariant is enforced by
  // TSan and review here rather than the capability analysis. Keep every
  // Slot access inside a MutexLock(mu_) scope.
  struct Slot {
    bool building = true;
    std::shared_ptr<const SystemMatrixEntry> entry;  // set once ready
    std::exception_ptr error;                        // set when the build threw
  };

  /// Full build from the geometry (CSC -> CSCV [-> CSR]); no lock held.
  static std::shared_ptr<SystemMatrixEntry> build_entry(const MatrixKey& key);
  /// Attempts a spill restore; nullptr when unavailable/unusable.
  [[nodiscard]] std::shared_ptr<SystemMatrixEntry> try_restore(const MatrixKey& key) const;
  /// Evicts LRU entries (never `keep`) until resident bytes fit `budget`.
  /// Returns the evicted entries that want a spill file; the caller writes
  /// them via spill_entries() AFTER releasing mu_ — spilling a
  /// multi-hundred-MB matrix under the lock would stall every concurrent
  /// lookup (including pure hits) for the full duration of the disk write.
  [[nodiscard]] std::vector<std::shared_ptr<const SystemMatrixEntry>> evict_to_locked(
      std::size_t budget, const std::string& keep) CSCV_REQUIRES(mu_);
  /// Writes spill files for evicted entries. Must NOT hold mu_ (the
  /// off-lock I/O rule, docs/CONCURRENCY.md): entries are immutable
  /// shared_ptrs and options_ never changes after construction, so the
  /// writes need no lock — only the stats_.spills increment re-locks.
  void spill_entries(
      const std::vector<std::shared_ptr<const SystemMatrixEntry>>& victims)
      CSCV_EXCLUDES(mu_);
  void touch_locked(const std::string& fingerprint) CSCV_REQUIRES(mu_);

  Options options_;
  mutable util::Mutex mu_;
  util::CondVar ready_;  // signaled when a slot leaves kBuilding
  std::unordered_map<std::string, std::shared_ptr<Slot>> slots_ CSCV_GUARDED_BY(mu_);
  // Ready entries only; front = most recent.
  std::list<std::string> lru_ CSCV_GUARDED_BY(mu_);
  std::size_t resident_bytes_ CSCV_GUARDED_BY(mu_) = 0;
  CacheStats stats_ CSCV_GUARDED_BY(mu_);
};

}  // namespace cscv::pipeline
