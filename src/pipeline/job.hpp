// ReconJob / ReconResult — the value types that flow through ReconService.
//
// A job carries everything needed to reconstruct one slice: the acquisition
// geometry, the CSCV tuning of the operator it wants, the algorithm and its
// solver options, and the sinogram itself. A result carries the volume plus
// the telemetry a service operator actually looks at: where time went
// (queue wait / operator acquire / solve), whether the system matrix was a
// cache hit, and the PlanStats snapshot of the worker's execution plan.
// Results serialize to util::Json (summary only — the volume payload stays
// in memory).
#pragma once

#include <cstdint>
#include <string>

#include "core/plan.hpp"
#include "pipeline/matrix_cache.hpp"
#include "recon/solvers.hpp"
#include "util/aligned_vector.hpp"
#include "util/json.hpp"

namespace cscv::pipeline {

/// Service class of a job (docs/SERVICE.md). The class selects admission
/// and deadline behavior, not priority: interactive jobs are admitted with
/// kReject semantics (a full queue answers immediately instead of applying
/// backpressure) and inherit ServiceOptions::interactive_deadline_seconds
/// when they carry no deadline of their own; batch jobs follow the
/// service-wide admission policy and never gain an implicit deadline.
enum class QosClass { kBatch, kInteractive };

[[nodiscard]] const char* qos_class_name(QosClass q);
/// Inverse of qos_class_name; CheckError on unknown names.
[[nodiscard]] QosClass qos_class_from_name(std::string_view name);

struct ReconJob {
  ct::ParallelGeometry geometry;
  core::CscvParams cscv{};
  core::CscvMatrix<float>::Variant variant = core::CscvMatrix<float>::Variant::kM;
  Algorithm algorithm = Algorithm::kSirt;

  /// Value storage dtype for the operator ("fp32" | "bf16" | "fp16" on the
  /// wire, docs/PRECISION.md). Reduced storage halves operator bytes; the
  /// solve still accumulates in fp32.
  core::ValueType value_type = core::ValueType::kF32;
  /// Certified sparsification threshold for the operator; 0 disables.
  double sparsify_eps = 0.0;

  /// Solver knobs for the iterative algorithms (ignored by kFbp).
  recon::SolveOptions solve{};
  /// Subset count for kOsSart (ignored elsewhere).
  int os_sart_subsets = 8;

  /// Wall-clock budget measured from submit(); 0 disables. A job whose
  /// budget is spent before its solve starts resolves as kExpired (checked
  /// at dequeue and again after operator acquisition — a running solve is
  /// never interrupted).
  double deadline_seconds = 0.0;

  /// Free-form label echoed into the result (dataset name, client id, ...).
  std::string tag;

  /// Originating tenant (quota accounting in the network front end; empty
  /// means the default tenant). Deliberately NOT part of matrix_key():
  /// tenants sharing a scanner geometry share the cached system matrix.
  std::string tenant;
  QosClass qos = QosClass::kBatch;

  /// Bin-major sinogram, geometry.num_rows() elements.
  util::AlignedVector<float> sinogram;

  [[nodiscard]] MatrixKey matrix_key() const {
    return MatrixKey{geometry, cscv, variant, algorithm, value_type, sparsify_eps};
  }

  /// The service wire format (docs/SERVICE.md): every field of the job as
  /// one JSON object, the sinogram as base64 of its little-endian float32
  /// bytes — the encoding that survives the HTTP round trip bit-for-bit.
  [[nodiscard]] util::Json to_json() const;

  /// Parses the wire format. Required fields: "geometry" and a sinogram
  /// ("sinogram_b64", or "sinogram" as a JSON number array for hand-written
  /// requests); everything else defaults like a default-constructed job.
  /// Throws CheckError naming the offending field on malformed or
  /// inconsistent specs (unknown algorithm, bad geometry, sinogram length
  /// mismatch, unknown keys) — the 4xx path of the HTTP front end.
  static ReconJob from_json(const util::Json& spec);
};

enum class JobStatus {
  kOk,         // volume is valid
  kRejected,   // refused at admission (queue full under kReject, or shutdown)
  kExpired,    // deadline spent before the solve started
  kCancelled,  // cancel() reached it while queued, or abort-shutdown drained it
  kFailed,     // the build or solve threw; see error
};

[[nodiscard]] const char* job_status_name(JobStatus s);

struct ReconResult {
  std::uint64_t job_id = 0;
  std::string tag;
  JobStatus status = JobStatus::kFailed;
  std::string error;  // empty unless status == kFailed

  int worker = -1;  // worker index that ran the job (-1: never ran)
  bool cache_hit = false;
  double queue_wait_seconds = 0.0;
  double acquire_seconds = 0.0;  // time inside SystemMatrixCache::get_or_build
  double solve_seconds = 0.0;

  int iterations_run = 0;
  double final_residual = 0.0;  // ||b - A x|| after the last iteration

  /// Jobs fused into the batched solve that produced this result (1 = ran
  /// alone), and this job's column index within that batch. The volume is
  /// bitwise identical either way; these exist for telemetry.
  int batch_size = 1;
  int batch_index = 0;

  /// Reconstructed image, geometry.num_cols() elements (empty unless kOk).
  util::AlignedVector<float> volume;
  /// Snapshot of the worker plan that ran the job (zero for kOsSart, which
  /// runs on CSR subsets instead of a plan).
  core::PlanStats plan_stats{};

  /// Telemetry summary (status, timings, plan highlights) — not the volume.
  [[nodiscard]] util::Json to_json() const;
};

}  // namespace cscv::pipeline
