// Bounded MPMC queue — the admission stage of the reconstruction service.
//
// A deliberately boring mutex + two-condvar queue: the items that flow
// through it are whole reconstruction jobs (milliseconds to seconds of
// work each), so lock-free cleverness would buy nothing while costing
// ThreadSanitizer transparency. The two admission verbs map onto the
// service's backpressure policies:
//   * push     — blocks while the queue is full (AdmissionPolicy::kBlock),
//   * try_push — returns kFull immediately (AdmissionPolicy::kReject).
// Both take the item by reference and move from it only on kOk, so a
// rejected item (carrying its promise) stays with the caller to resolve.
//
// close() starts shutdown: producers are refused from that point on, while
// consumers keep draining whatever is already queued and pop() returns
// false only once the queue is closed *and* empty — the graceful-drain
// contract. drain() grabs everything still queued in one swoop (the abort
// path, where the service fails the leftovers itself).
//
// The lock discipline is compile-time checked: every guarded member carries
// CSCV_GUARDED_BY(mu_) and the condvar waits are explicit while-loops, so a
// Clang build with -Wthread-safety proves no unlocked access exists
// (docs/CONCURRENCY.md).
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "util/assertx.hpp"
#include "util/sync.hpp"

namespace cscv::pipeline {

enum class PushResult { kOk, kFull, kClosed };

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    CSCV_CHECK_MSG(capacity >= 1, "BoundedQueue capacity must be >= 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking admission: waits for space, moves from `item` on kOk.
  /// Returns kClosed (item untouched) if the queue closes while waiting.
  PushResult push(T& item) {
    util::MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) space_.wait(mu_);
    if (closed_) return PushResult::kClosed;
    items_.push_back(std::move(item));
    lock.unlock();
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Non-blocking admission: moves from `item` only on kOk.
  PushResult try_push(T& item) {
    util::MutexLock lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (items_.size() >= capacity_) return PushResult::kFull;
    items_.push_back(std::move(item));
    lock.unlock();
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// fully drained (false) — consumers use the false return to exit.
  bool pop(T& out) {
    util::MutexLock lock(mu_);
    while (!closed_ && items_.empty()) ready_.wait(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_.notify_one();
    return true;
  }

  /// Bounded-wait pop: like pop(), but gives up after `timeout`. Returns
  /// true with an item moved into `out`; false on timeout or when the
  /// queue is closed and fully drained (check closed() to tell the two
  /// apart). A zero or negative timeout is a non-blocking poll. The wait
  /// loops on a deadline fixed up front, so spurious wakeups neither
  /// return early nor extend the wait — the batching window of
  /// ReconService leans on both properties.
  template <typename Rep, typename Period>
  bool try_pop_for(T& out, std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    util::MutexLock lock(mu_);
    while (!closed_ && items_.empty()) {
      if (ready_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
    }
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_.notify_one();
    return true;
  }

  /// Refuses producers from now on; consumers drain the remaining items.
  void close() {
    {
      util::MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  /// Removes and returns everything still queued (the abort-shutdown path;
  /// the caller owns resolving the drained items).
  std::vector<T> drain() {
    util::MutexLock lock(mu_);
    std::vector<T> out;
    out.reserve(items_.size());
    for (T& item : items_) out.push_back(std::move(item));
    items_.clear();
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    util::MutexLock lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const {
    util::MutexLock lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable util::Mutex mu_;
  util::CondVar ready_;  // signaled on push / close
  util::CondVar space_;  // signaled on pop / close
  std::deque<T> items_ CSCV_GUARDED_BY(mu_);
  bool closed_ CSCV_GUARDED_BY(mu_) = false;
};

}  // namespace cscv::pipeline
