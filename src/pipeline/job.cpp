#include "pipeline/job.hpp"

namespace cscv::pipeline {

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kExpired: return "expired";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

util::Json ReconResult::to_json() const {
  util::Json j = util::Json::object();
  j["job_id"] = util::Json(job_id);
  if (!tag.empty()) j["tag"] = util::Json(tag);
  j["status"] = util::Json(job_status_name(status));
  if (!error.empty()) j["error"] = util::Json(error);
  j["worker"] = util::Json(worker);
  j["cache_hit"] = util::Json(cache_hit);
  j["queue_wait_seconds"] = util::Json(queue_wait_seconds);
  j["acquire_seconds"] = util::Json(acquire_seconds);
  j["solve_seconds"] = util::Json(solve_seconds);
  j["iterations_run"] = util::Json(iterations_run);
  j["final_residual"] = util::Json(final_residual);
  if (batch_size > 1) {
    j["batch_size"] = util::Json(batch_size);
    j["batch_index"] = util::Json(batch_index);
  }
  j["volume_elements"] = util::Json(volume.size());
  if (plan_stats.nnz > 0) {
    util::Json p = util::Json::object();
    p["nnz"] = util::Json(plan_stats.nnz);
    p["padding_fraction"] = util::Json(plan_stats.padding_fraction);
    p["isa_tier"] = util::Json(simd::isa_tier_name(plan_stats.isa_tier));
    if (plan_stats.isa_clamped) p["isa_clamped"] = util::Json(true);
    p["threads"] = util::Json(plan_stats.threads);
    p["scratch_bytes"] = util::Json(plan_stats.scratch_bytes);
    if (plan_stats.telemetry_enabled) {
      p["applies"] = util::Json(plan_stats.applies);
      p["transpose_applies"] = util::Json(plan_stats.transpose_applies);
      p["gflops_best"] = util::Json(plan_stats.gflops_best);
    }
    j["plan"] = p;
  }
  return j;
}

}  // namespace cscv::pipeline
