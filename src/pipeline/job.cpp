#include "pipeline/job.hpp"

#include <cmath>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/base64.hpp"

namespace cscv::pipeline {

namespace {

/// Strict-key guard: a spec with a key outside `allowed` is rejected, so a
/// typo ("iteratons") fails loudly instead of silently running defaults.
void check_keys(const util::Json& obj, std::initializer_list<const char*> allowed,
                const char* where) {
  for (const auto& [key, value] : obj.items()) {
    (void)value;
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    CSCV_CHECK_MSG(known, "job spec: unknown key \"" << key << "\" in " << where);
  }
}

int get_int_field(const util::Json& obj, const char* key, int def) {
  const util::Json* v = obj.find(key);
  return v == nullptr ? def : static_cast<int>(v->as_int());
}

double get_double_field(const util::Json& obj, const char* key, double def) {
  const util::Json* v = obj.find(key);
  return v == nullptr ? def : v->as_double();
}

bool get_bool_field(const util::Json& obj, const char* key, bool def) {
  const util::Json* v = obj.find(key);
  return v == nullptr ? def : v->as_bool();
}

std::string get_string_field(const util::Json& obj, const char* key,
                             const std::string& def) {
  const util::Json* v = obj.find(key);
  return v == nullptr ? def : v->as_string();
}

}  // namespace

const char* qos_class_name(QosClass q) {
  return q == QosClass::kInteractive ? "interactive" : "batch";
}

QosClass qos_class_from_name(std::string_view name) {
  if (name == "batch") return QosClass::kBatch;
  if (name == "interactive") return QosClass::kInteractive;
  CSCV_CHECK_MSG(false, "unknown QoS class \"" << std::string(name)
                                               << "\" (want interactive|batch)");
  return QosClass::kBatch;  // unreachable
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kExpired: return "expired";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

util::Json ReconJob::to_json() const {
  util::Json j = util::Json::object();
  util::Json g = util::Json::object();
  g["image_size"] = util::Json(geometry.image_size);
  g["num_bins"] = util::Json(geometry.num_bins);
  g["num_views"] = util::Json(geometry.num_views);
  g["start_angle_deg"] = util::Json(geometry.start_angle_deg);
  g["delta_angle_deg"] = util::Json(geometry.delta_angle_deg);
  j["geometry"] = std::move(g);
  util::Json c = util::Json::object();
  c["s_vvec"] = util::Json(cscv.s_vvec);
  c["s_imgb"] = util::Json(cscv.s_imgb);
  c["s_vxg"] = util::Json(cscv.s_vxg);
  c["reference"] = util::Json(core::reference_name(cscv.reference));
  c["order"] = util::Json(core::vxg_order_name(cscv.order));
  j["cscv"] = std::move(c);
  j["variant"] = util::Json(variant_name(variant));
  j["algorithm"] = util::Json(algorithm_name(algorithm));
  if (value_type != core::ValueType::kF32) {
    j["value_type"] = util::Json(core::value_type_name(value_type));
  }
  if (sparsify_eps > 0.0) j["sparsify_eps"] = util::Json(sparsify_eps);
  util::Json s = util::Json::object();
  s["iterations"] = util::Json(solve.iterations);
  s["relaxation"] = util::Json(solve.relaxation);
  s["nonneg_floor"] = util::Json(solve.nonneg_floor);
  s["enforce_nonneg"] = util::Json(solve.enforce_nonneg);
  j["solve"] = std::move(s);
  if (algorithm == Algorithm::kOsSart) j["os_sart_subsets"] = util::Json(os_sart_subsets);
  if (deadline_seconds > 0.0) j["deadline_seconds"] = util::Json(deadline_seconds);
  if (!tag.empty()) j["tag"] = util::Json(tag);
  if (!tenant.empty()) j["tenant"] = util::Json(tenant);
  j["qos"] = util::Json(qos_class_name(qos));
  j["sinogram_b64"] =
      util::Json(util::base64_encode(sinogram.data(), sinogram.size() * sizeof(float)));
  return j;
}

ReconJob ReconJob::from_json(const util::Json& spec) {
  CSCV_CHECK_MSG(spec.is_object(), "job spec must be a JSON object");
  check_keys(spec,
             {"geometry", "cscv", "variant", "algorithm", "value_type", "sparsify_eps",
              "solve", "os_sart_subsets", "deadline_seconds", "tag", "tenant", "qos",
              "sinogram_b64", "sinogram"},
             "job spec");
  ReconJob job;

  const util::Json* g = spec.find("geometry");
  CSCV_CHECK_MSG(g != nullptr && g->is_object(),
                 "job spec: \"geometry\" object is required");
  check_keys(*g, {"image_size", "num_bins", "num_views", "start_angle_deg",
                  "delta_angle_deg"},
             "geometry");
  job.geometry.image_size = get_int_field(*g, "image_size", 0);
  job.geometry.num_bins = get_int_field(*g, "num_bins",
                                        ct::standard_num_bins(job.geometry.image_size));
  job.geometry.num_views = get_int_field(*g, "num_views", 0);
  job.geometry.start_angle_deg = get_double_field(*g, "start_angle_deg", 0.0);
  job.geometry.delta_angle_deg = get_double_field(
      *g, "delta_angle_deg",
      job.geometry.num_views > 0 ? 180.0 / job.geometry.num_views : 0.0);
  job.geometry.validate();  // CheckError on bad geometry -> 400

  if (const util::Json* c = spec.find("cscv")) {
    CSCV_CHECK_MSG(c->is_object(), "job spec: \"cscv\" must be an object");
    check_keys(*c, {"s_vvec", "s_imgb", "s_vxg", "reference", "order"}, "cscv");
    job.cscv.s_vvec = get_int_field(*c, "s_vvec", job.cscv.s_vvec);
    job.cscv.s_imgb = get_int_field(*c, "s_imgb", job.cscv.s_imgb);
    job.cscv.s_vxg = get_int_field(*c, "s_vxg", job.cscv.s_vxg);
    job.cscv.reference = core::reference_from_name(
        get_string_field(*c, "reference", core::reference_name(job.cscv.reference)));
    job.cscv.order = core::vxg_order_from_name(
        get_string_field(*c, "order", core::vxg_order_name(job.cscv.order)));
    job.cscv.validate();
  }

  job.variant = variant_from_name(get_string_field(spec, "variant", "m"));
  job.algorithm = algorithm_from_name(get_string_field(spec, "algorithm", "sirt"));

  job.value_type = core::value_type_from_name(
      get_string_field(spec, "value_type", core::value_type_name(job.value_type)));
  // kAuto means "match the matrix" in PlanOptions; a job spec names the
  // matrix dtype itself, so "auto" has nothing to resolve against.
  CSCV_CHECK_MSG(job.value_type != core::ValueType::kAuto,
                 "job spec: value_type must be fp32|bf16|fp16");
  job.sparsify_eps = get_double_field(spec, "sparsify_eps", 0.0);
  CSCV_CHECK_MSG(std::isfinite(job.sparsify_eps) && job.sparsify_eps >= 0.0,
                 "job spec: sparsify_eps must be finite and >= 0");

  if (const util::Json* s = spec.find("solve")) {
    CSCV_CHECK_MSG(s->is_object(), "job spec: \"solve\" must be an object");
    check_keys(*s, {"iterations", "relaxation", "nonneg_floor", "enforce_nonneg"},
               "solve");
    job.solve.iterations = get_int_field(*s, "iterations", job.solve.iterations);
    job.solve.relaxation = get_double_field(*s, "relaxation", job.solve.relaxation);
    job.solve.nonneg_floor = get_double_field(*s, "nonneg_floor", job.solve.nonneg_floor);
    job.solve.enforce_nonneg =
        get_bool_field(*s, "enforce_nonneg", job.solve.enforce_nonneg);
    CSCV_CHECK_MSG(job.solve.iterations >= 1, "job spec: iterations must be >= 1");
  }

  job.os_sart_subsets = get_int_field(spec, "os_sart_subsets", job.os_sart_subsets);
  CSCV_CHECK_MSG(job.os_sart_subsets >= 1, "job spec: os_sart_subsets must be >= 1");
  job.deadline_seconds = get_double_field(spec, "deadline_seconds", 0.0);
  CSCV_CHECK_MSG(job.deadline_seconds >= 0.0,
                 "job spec: deadline_seconds must be >= 0");
  job.tag = get_string_field(spec, "tag", "");
  job.tenant = get_string_field(spec, "tenant", "");
  job.qos = qos_class_from_name(get_string_field(spec, "qos", "batch"));

  const util::Json* b64 = spec.find("sinogram_b64");
  const util::Json* arr = spec.find("sinogram");
  CSCV_CHECK_MSG((b64 != nullptr) != (arr != nullptr),
                 "job spec: exactly one of \"sinogram_b64\" / \"sinogram\" is required");
  const auto rows = static_cast<std::size_t>(job.geometry.num_rows());
  if (b64 != nullptr) {
    const std::vector<unsigned char> bytes = util::base64_decode(b64->as_string());
    CSCV_CHECK_MSG(bytes.size() == rows * sizeof(float),
                   "job spec: sinogram_b64 decodes to "
                       << bytes.size() << " bytes, geometry wants "
                       << rows * sizeof(float) << " (" << rows << " float32)");
    job.sinogram.resize(rows);
    if (!bytes.empty()) std::memcpy(job.sinogram.data(), bytes.data(), bytes.size());
  } else {
    CSCV_CHECK_MSG(arr->is_array(), "job spec: \"sinogram\" must be an array");
    CSCV_CHECK_MSG(arr->size() == rows, "job spec: sinogram has "
                                            << arr->size() << " elements, geometry wants "
                                            << rows);
    job.sinogram.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      job.sinogram[i] = static_cast<float>(arr->at(i).as_double());
    }
  }
  return job;
}

util::Json ReconResult::to_json() const {
  util::Json j = util::Json::object();
  j["job_id"] = util::Json(job_id);
  if (!tag.empty()) j["tag"] = util::Json(tag);
  j["status"] = util::Json(job_status_name(status));
  if (!error.empty()) j["error"] = util::Json(error);
  j["worker"] = util::Json(worker);
  j["cache_hit"] = util::Json(cache_hit);
  j["queue_wait_seconds"] = util::Json(queue_wait_seconds);
  j["acquire_seconds"] = util::Json(acquire_seconds);
  j["solve_seconds"] = util::Json(solve_seconds);
  j["iterations_run"] = util::Json(iterations_run);
  j["final_residual"] = util::Json(final_residual);
  if (batch_size > 1) {
    j["batch_size"] = util::Json(batch_size);
    j["batch_index"] = util::Json(batch_index);
  }
  j["volume_elements"] = util::Json(volume.size());
  if (plan_stats.nnz > 0) {
    util::Json p = util::Json::object();
    p["nnz"] = util::Json(plan_stats.nnz);
    p["padding_fraction"] = util::Json(plan_stats.padding_fraction);
    p["isa_tier"] = util::Json(simd::isa_tier_name(plan_stats.isa_tier));
    if (plan_stats.isa_clamped) p["isa_clamped"] = util::Json(true);
    p["threads"] = util::Json(plan_stats.threads);
    p["scratch_bytes"] = util::Json(plan_stats.scratch_bytes);
    if (plan_stats.telemetry_enabled) {
      p["applies"] = util::Json(plan_stats.applies);
      p["transpose_applies"] = util::Json(plan_stats.transpose_applies);
      p["gflops_best"] = util::Json(plan_stats.gflops_best);
    }
    j["plan"] = p;
  }
  return j;
}

}  // namespace cscv::pipeline
